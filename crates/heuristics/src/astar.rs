//! An MQTH-style router (Zulehner, Paler, Wille — TCAD 2018): exhaustive
//! A* search for the cheapest swap sequence between consecutive topological
//! layers, with an expansion cap and a shortest-path fallback to stay
//! total. The paper reports a mean 5.19× cost ratio against this baseline.

use std::collections::{BinaryHeap, HashMap};

use arch::ConnectivityGraph;
use circuit::{
    Circuit, Gate, RouteError, RouteOutcome, RouteRequest, RoutedCircuit, RoutedOp, Router,
};
use sat::SolverTelemetry;

use crate::placement::degree_matching_placement;

/// A*-router configuration.
#[derive(Clone, Debug)]
pub struct AStarConfig {
    /// Maximum node expansions per layer before falling back to greedy
    /// shortest-path routing (keeps worst-case time bounded, mirroring
    /// MQTH's layer-local application of A*).
    pub max_expansions: usize,
}

impl Default for AStarConfig {
    fn default() -> Self {
        AStarConfig {
            max_expansions: 20_000,
        }
    }
}

/// The A*-based router.
///
/// # Examples
///
/// ```
/// use circuit::{Circuit, Router, verify::verify};
/// use heuristics::AStar;
/// let c = circuit::generators::qft(4);
/// let g = arch::devices::tokyo();
/// let routed = AStar::default().route(&c, &g)?;
/// verify(&c, &g, &routed).expect("verifies");
/// # Ok::<(), circuit::RouteError>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct AStar {
    config: AStarConfig,
}

impl AStar {
    /// Creates a router with the given configuration.
    pub fn new(config: AStarConfig) -> Self {
        AStar { config }
    }
}

#[derive(PartialEq)]
struct Node {
    f: usize,
    g: usize,
    pos: Vec<usize>,
    swaps: Vec<(usize, usize)>,
}

impl Eq for Node {}

impl Ord for Node {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap on f, tie-break on larger g (deeper first).
        other.f.cmp(&self.f).then_with(|| self.g.cmp(&other.g))
    }
}

impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl AStar {
    /// Admissible heuristic: each swap can reduce the distance of at most
    /// two blocked pairs by one each.
    fn heuristic(graph: &ConnectivityGraph, pos: &[usize], pairs: &[(usize, usize)]) -> usize {
        let total: usize = pairs
            .iter()
            .map(|&(a, b)| graph.distance(pos[a], pos[b]).saturating_sub(1))
            .sum();
        total.div_ceil(2)
    }

    /// Finds a swap sequence making every pair in `pairs` *simultaneously*
    /// adjacent, starting from `pos` (logical → physical). Returns `None`
    /// when the expansion cap is hit (the caller then routes the layer's
    /// gates one at a time).
    fn solve_layer(
        &self,
        graph: &ConnectivityGraph,
        pos: &[usize],
        pairs: &[(usize, usize)],
    ) -> Option<Vec<(usize, usize)>> {
        if pairs
            .iter()
            .all(|&(a, b)| graph.are_adjacent(pos[a], pos[b]))
        {
            return Some(Vec::new());
        }
        let mut open = BinaryHeap::new();
        let mut best_g: HashMap<Vec<usize>, usize> = HashMap::new();
        open.push(Node {
            f: Self::heuristic(graph, pos, pairs),
            g: 0,
            pos: pos.to_vec(),
            swaps: Vec::new(),
        });
        best_g.insert(pos.to_vec(), 0);
        let mut expansions = 0usize;

        while let Some(node) = open.pop() {
            if pairs
                .iter()
                .all(|&(a, b)| graph.are_adjacent(node.pos[a], node.pos[b]))
            {
                return Some(node.swaps);
            }
            expansions += 1;
            if expansions > self.config.max_expansions {
                break;
            }
            if best_g.get(&node.pos).is_some_and(|&g| g < node.g) {
                continue; // stale entry
            }
            // Expand: swaps on edges touching a qubit of a blocked pair.
            let mut relevant: Vec<usize> = Vec::new();
            for &(a, b) in pairs {
                if !graph.are_adjacent(node.pos[a], node.pos[b]) {
                    relevant.push(node.pos[a]);
                    relevant.push(node.pos[b]);
                }
            }
            relevant.sort_unstable();
            relevant.dedup();
            for &p in &relevant {
                for &p2 in graph.neighbors(p) {
                    let mut pos2 = node.pos.clone();
                    for m in pos2.iter_mut() {
                        if *m == p {
                            *m = p2;
                        } else if *m == p2 {
                            *m = p;
                        }
                    }
                    let g2 = node.g + 1;
                    if best_g.get(&pos2).is_some_and(|&g| g <= g2) {
                        continue;
                    }
                    best_g.insert(pos2.clone(), g2);
                    let mut swaps2 = node.swaps.clone();
                    swaps2.push((p.min(p2), p.max(p2)));
                    open.push(Node {
                        f: g2 + Self::heuristic(graph, &pos2, pairs),
                        g: g2,
                        pos: pos2,
                        swaps: swaps2,
                    });
                }
            }
        }

        None
    }
}

impl AStar {
    /// The routing pass proper, after request validation.
    fn route_impl(
        &self,
        circuit: &Circuit,
        graph: &ConnectivityGraph,
    ) -> Result<RoutedCircuit, RouteError> {
        let initial = degree_matching_placement(circuit, graph);
        let mut pos = initial.clone();
        let mut ops = Vec::new();

        let apply_swap = |pos: &mut Vec<usize>, ops: &mut Vec<RoutedOp>, x: usize, y: usize| {
            ops.push(RoutedOp::Swap(x, y));
            for m in pos.iter_mut() {
                if *m == x {
                    *m = y;
                } else if *m == y {
                    *m = x;
                }
            }
        };

        for layer in circuit.topological_layers() {
            let pairs: Vec<(usize, usize)> = layer
                .iter()
                .filter_map(|&k| match &circuit.gates()[k] {
                    Gate::Two { a, b, .. } => Some((a.0, b.0)),
                    Gate::One { .. } => None,
                })
                .collect();
            match self.solve_layer(graph, &pos, &pairs) {
                Some(swaps) => {
                    for (x, y) in swaps {
                        apply_swap(&mut pos, &mut ops, x, y);
                    }
                    for &k in &layer {
                        ops.push(RoutedOp::Logical(k));
                    }
                }
                None => {
                    // Expansion cap hit: route the layer's gates one at a
                    // time along shortest paths (always correct, since each
                    // gate executes immediately after its own swaps).
                    for &k in &layer {
                        if let Gate::Two { a, b, .. } = &circuit.gates()[k] {
                            while !graph.are_adjacent(pos[a.0], pos[b.0]) {
                                let path = graph
                                    .shortest_path(pos[a.0], pos[b.0])
                                    .expect("device is connected");
                                apply_swap(&mut pos, &mut ops, path[0], path[1]);
                            }
                        }
                        ops.push(RoutedOp::Logical(k));
                    }
                }
            }
        }
        Ok(RoutedCircuit::new(initial, ops))
    }
}

impl Router for AStar {
    fn name(&self) -> &str {
        "mqth-astar"
    }

    fn route_request(&self, request: &RouteRequest<'_>) -> RouteOutcome {
        RouteOutcome::capture(self.name(), || {
            let result = request
                .validate()
                .and_then(|()| self.route_impl(request.circuit(), request.graph()));
            (result, SolverTelemetry::default())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuit::verify::verify;

    #[test]
    fn routes_paper_example_optimally_per_layer() {
        let mut c = Circuit::new(4);
        c.cx(0, 1);
        c.cx(0, 2);
        c.cx(3, 2);
        c.cx(0, 3);
        let g = ConnectivityGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let routed = AStar::default().route(&c, &g).expect("routes");
        verify(&c, &g, &routed).expect("verifies");
    }

    #[test]
    fn layer_search_is_optimal_on_small_case() {
        // One blocked pair at distance 2: exactly one swap suffices.
        let g = arch::devices::linear(3);
        let astar = AStar::default();
        let swaps = astar.solve_layer(&g, &[0, 2], &[(0, 1)]).expect("found");
        assert_eq!(swaps.len(), 1);
    }

    #[test]
    fn routes_random_circuits() {
        let g = arch::devices::tokyo();
        for seed in 0..3 {
            let c = circuit::generators::random_local(10, 50, 9, 0.2, seed);
            let routed = AStar::default().route(&c, &g).expect("routes");
            verify(&c, &g, &routed).expect("verifies");
        }
    }

    #[test]
    fn fallback_still_verifies() {
        // Absurdly small expansion cap forces the greedy fallback.
        let g = arch::devices::tokyo_minus();
        let c = circuit::generators::random_local(12, 40, 11, 0.1, 2);
        let astar = AStar::new(AStarConfig { max_expansions: 1 });
        let routed = astar.route(&c, &g).expect("routes");
        verify(&c, &g, &routed).expect("verifies");
    }

    #[test]
    fn heuristic_is_zero_at_goal() {
        let g = arch::devices::linear(3);
        assert_eq!(AStar::heuristic(&g, &[0, 1], &[(0, 1)]), 0);
        assert_eq!(AStar::heuristic(&g, &[0, 2], &[(0, 1)]), 1);
    }
}

//! A TKET-style greedy router (Cowtan et al., "On the qubit routing
//! problem"): greedy initial placement followed by lookahead-scored swap
//! insertion along shortest paths. This is the best-performing heuristic in
//! the paper's comparison (mean 3.64× cost ratio, Fig. 12).

use arch::ConnectivityGraph;
use circuit::{
    Circuit, Gate, RouteError, RouteOutcome, RouteRequest, RoutedCircuit, RoutedOp, Router,
};
use sat::SolverTelemetry;

use crate::placement::degree_matching_placement;

/// TKET-like router configuration.
#[derive(Clone, Debug)]
pub struct TketConfig {
    /// Number of upcoming two-qubit gates scored when choosing a swap.
    pub lookahead: usize,
    /// Discount applied to each successive lookahead gate.
    pub discount: f64,
}

impl Default for TketConfig {
    fn default() -> Self {
        TketConfig {
            lookahead: 10,
            discount: 0.7,
        }
    }
}

/// The TKET-like greedy router.
///
/// # Examples
///
/// ```
/// use circuit::{Circuit, Router, verify::verify};
/// use heuristics::Tket;
/// let c = circuit::generators::qft(5);
/// let g = arch::devices::tokyo();
/// let routed = Tket::default().route(&c, &g)?;
/// verify(&c, &g, &routed).expect("verifies");
/// # Ok::<(), circuit::RouteError>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct Tket {
    config: TketConfig,
}

impl Tket {
    /// Creates a router with the given configuration.
    pub fn new(config: TketConfig) -> Self {
        Tket { config }
    }
}

impl Tket {
    /// The routing pass proper, after request validation.
    fn route_impl(
        &self,
        circuit: &Circuit,
        graph: &ConnectivityGraph,
    ) -> Result<RoutedCircuit, RouteError> {
        let initial = degree_matching_placement(circuit, graph);
        let mut pos = initial.clone();
        let mut ops: Vec<RoutedOp> = Vec::new();

        // Upcoming 2q interactions per gate index, for lookahead scoring.
        let interactions = circuit.two_qubit_interactions();
        let mut next_interaction = 0usize;

        for (k, gate) in circuit.gates().iter().enumerate() {
            match gate {
                Gate::One { .. } => ops.push(RoutedOp::Logical(k)),
                Gate::Two { a, b, .. } => {
                    while interactions
                        .get(next_interaction)
                        .is_some_and(|&(gi, _, _)| gi < k)
                    {
                        next_interaction += 1;
                    }
                    // Insert swaps until the operands are adjacent.
                    while !graph.are_adjacent(pos[a.0], pos[b.0]) {
                        let swap = self.best_swap(
                            graph,
                            &pos,
                            (a.0, b.0),
                            &interactions[next_interaction..],
                        );
                        ops.push(RoutedOp::Swap(swap.0, swap.1));
                        for m in pos.iter_mut() {
                            if *m == swap.0 {
                                *m = swap.1;
                            } else if *m == swap.1 {
                                *m = swap.0;
                            }
                        }
                    }
                    ops.push(RoutedOp::Logical(k));
                }
            }
        }
        Ok(RoutedCircuit::new(initial, ops))
    }
}

impl Tket {
    /// Chooses the next swap while gate `(qa, qb)` is blocked: among the
    /// swaps lying on shortest paths between the operands (guaranteeing
    /// progress), pick the one minimizing the discounted distance of
    /// upcoming interactions.
    fn best_swap(
        &self,
        graph: &ConnectivityGraph,
        pos: &[usize],
        (qa, qb): (usize, usize),
        upcoming: &[(usize, circuit::Qubit, circuit::Qubit)],
    ) -> (usize, usize) {
        let (pa, pb) = (pos[qa], pos[qb]);
        let d = graph.distance(pa, pb);
        debug_assert!(d >= 2, "called only when blocked");
        // Progress-guaranteeing candidates: edges adjacent to either
        // endpoint that strictly reduce the distance.
        let mut candidates: Vec<(usize, usize)> = Vec::new();
        for &(from, to_target) in &[(pa, pb), (pb, pa)] {
            for &n in graph.neighbors(from) {
                if graph.distance(n, to_target) < d {
                    candidates.push((from.min(n), from.max(n)));
                }
            }
        }
        candidates.dedup();
        debug_assert!(!candidates.is_empty());

        let score = |swap: (usize, usize)| -> f64 {
            let moved = |p: usize| -> usize {
                if p == swap.0 {
                    swap.1
                } else if p == swap.1 {
                    swap.0
                } else {
                    p
                }
            };
            let mut total = graph.distance(moved(pa), moved(pb)) as f64;
            let mut weight = self.config.discount;
            for &(_, x, y) in upcoming.iter().take(self.config.lookahead) {
                total += weight * graph.distance(moved(pos[x.0]), moved(pos[y.0])) as f64;
                weight *= self.config.discount;
            }
            total
        };
        candidates
            .into_iter()
            .min_by(|&x, &y| {
                score(x)
                    .partial_cmp(&score(y))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("nonempty candidates")
    }
}

impl Router for Tket {
    fn name(&self) -> &str {
        "tket"
    }

    fn route_request(&self, request: &RouteRequest<'_>) -> RouteOutcome {
        RouteOutcome::capture(self.name(), || {
            let result = request
                .validate()
                .and_then(|()| self.route_impl(request.circuit(), request.graph()));
            (result, SolverTelemetry::default())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuit::verify::verify;

    #[test]
    fn routes_paper_example() {
        let mut c = Circuit::new(4);
        c.cx(0, 1);
        c.cx(0, 2);
        c.cx(3, 2);
        c.cx(0, 3);
        let g = ConnectivityGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let routed = Tket::default().route(&c, &g).expect("routes");
        verify(&c, &g, &routed).expect("verifies");
    }

    #[test]
    fn zero_swaps_for_local_circuits() {
        let c = circuit::generators::ising_model(6, 2);
        let g = arch::devices::linear(6);
        let routed = Tket::default().route(&c, &g).expect("routes");
        verify(&c, &g, &routed).expect("verifies");
        assert_eq!(routed.swap_count(), 0);
    }

    #[test]
    fn routes_random_circuits_on_all_tokyo_variants() {
        for g in [
            arch::devices::tokyo_minus(),
            arch::devices::tokyo(),
            arch::devices::tokyo_plus(),
        ] {
            for seed in 0..3 {
                let c = circuit::generators::random_local(12, 60, 11, 0.2, seed);
                let routed = Tket::default().route(&c, &g).expect("routes");
                verify(&c, &g, &routed).expect("verifies");
            }
        }
    }

    #[test]
    fn preserves_program_order() {
        let c = circuit::generators::qft(6);
        let g = arch::devices::tokyo_minus();
        let routed = Tket::default().route(&c, &g).expect("routes");
        let logical: Vec<usize> = routed
            .ops()
            .iter()
            .filter_map(|op| match op {
                RoutedOp::Logical(k) => Some(*k),
                RoutedOp::Swap(..) => None,
            })
            .collect();
        let expect: Vec<usize> = (0..c.len()).collect();
        assert_eq!(logical, expect);
    }
}

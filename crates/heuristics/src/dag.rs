//! A dependency view of a circuit used by the routing heuristics: gates
//! become executable once every earlier gate sharing a qubit has executed.

use circuit::{Circuit, Gate, Qubit};

/// Tracks which gates are ready ("front layer") as execution progresses.
#[derive(Clone, Debug)]
pub struct DagFrontier {
    /// For each qubit, indices of its gates in program order not yet done.
    pending: Vec<std::collections::VecDeque<usize>>,
    executed: Vec<bool>,
    num_done: usize,
}

impl DagFrontier {
    /// Builds the frontier for `circuit`.
    pub fn new(circuit: &Circuit) -> Self {
        let mut pending = vec![std::collections::VecDeque::new(); circuit.num_qubits()];
        for (k, g) in circuit.gates().iter().enumerate() {
            for q in g.qubits() {
                pending[q.0].push_back(k);
            }
        }
        DagFrontier {
            pending,
            executed: vec![false; circuit.len()],
            num_done: 0,
        }
    }

    /// True when every gate has executed.
    pub fn is_done(&self) -> bool {
        self.num_done == self.executed.len()
    }

    /// Number of gates executed so far.
    pub fn num_done(&self) -> usize {
        self.num_done
    }

    /// True if gate `k` is ready: it heads the pending queue of each of its
    /// qubits.
    pub fn is_ready(&self, circuit: &Circuit, k: usize) -> bool {
        !self.executed[k]
            && circuit.gates()[k]
                .qubits()
                .iter()
                .all(|q| self.pending[q.0].front() == Some(&k))
    }

    /// The current front layer: ready gate indices in program order.
    pub fn front(&self, circuit: &Circuit) -> Vec<usize> {
        let mut out = Vec::new();
        for q in 0..circuit.num_qubits() {
            if let Some(&k) = self.pending[q].front() {
                if self.is_ready(circuit, k) && !out.contains(&k) {
                    out.push(k);
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Marks gate `k` executed.
    ///
    /// # Panics
    ///
    /// Panics if `k` is not ready.
    pub fn execute(&mut self, circuit: &Circuit, k: usize) {
        assert!(self.is_ready(circuit, k), "gate {k} is not ready");
        for q in circuit.gates()[k].qubits() {
            self.pending[q.0].pop_front();
        }
        self.executed[k] = true;
        self.num_done += 1;
    }

    /// The next up-to-`limit` *two-qubit* gates beyond the front (SABRE's
    /// "extended set"), as `(a, b)` logical pairs.
    pub fn extended_set(&self, circuit: &Circuit, limit: usize) -> Vec<(Qubit, Qubit)> {
        // Walk each qubit's pending queue past the head, collecting 2q
        // gates in index order.
        let mut seen = std::collections::BTreeSet::new();
        for q in 0..circuit.num_qubits() {
            for &k in self.pending[q].iter().skip(1) {
                seen.insert(k);
            }
            if let Some(&k) = self.pending[q].front() {
                if !self.is_ready(circuit, k) {
                    seen.insert(k);
                }
            }
        }
        seen.into_iter()
            .filter_map(|k| match &circuit.gates()[k] {
                Gate::Two { a, b, .. } => Some((*a, *b)),
                Gate::One { .. } => None,
            })
            .take(limit)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn front_and_execution_order() {
        let mut c = Circuit::new(4);
        c.cx(0, 1); // 0
        c.cx(2, 3); // 1 (parallel with 0)
        c.cx(1, 2); // 2 (depends on both)
        let mut f = DagFrontier::new(&c);
        assert_eq!(f.front(&c), vec![0, 1]);
        assert!(!f.is_ready(&c, 2));
        f.execute(&c, 1);
        assert_eq!(f.front(&c), vec![0]);
        f.execute(&c, 0);
        assert_eq!(f.front(&c), vec![2]);
        f.execute(&c, 2);
        assert!(f.is_done());
    }

    #[test]
    #[should_panic(expected = "not ready")]
    fn cannot_execute_blocked_gate() {
        let mut c = Circuit::new(3);
        c.cx(0, 1);
        c.cx(1, 2);
        let mut f = DagFrontier::new(&c);
        f.execute(&c, 1);
    }

    #[test]
    fn extended_set_sees_beyond_front() {
        let mut c = Circuit::new(3);
        c.cx(0, 1); // front
        c.cx(1, 2); // extended
        c.cx(0, 2); // extended
        let f = DagFrontier::new(&c);
        let ext = f.extended_set(&c, 10);
        assert_eq!(ext.len(), 2);
        let ext1 = f.extended_set(&c, 1);
        assert_eq!(ext1.len(), 1);
    }

    #[test]
    fn one_qubit_gates_excluded_from_extended_set() {
        let mut c = Circuit::new(2);
        c.cx(0, 1);
        c.h(0);
        c.cx(0, 1);
        let f = DagFrontier::new(&c);
        assert_eq!(f.extended_set(&c, 10).len(), 1);
    }
}

//! Heuristic QMR baselines for the SATMAP (MICRO 2022) reproduction.
//!
//! The three state-of-the-art heuristic routers the paper compares against
//! in its Q2/Q4 experiments:
//!
//! * [`Sabre`] — bidirectional lookahead routing with decay (Li et al.,
//!   ASPLOS 2019; the basis of Qiskit's default pass);
//! * [`Tket`] — greedy placement plus lookahead-scored shortest-path swap
//!   insertion in the style of t|ket⟩ (Cowtan et al. 2019);
//! * [`AStar`] — layer-by-layer exhaustive A* search in the style of the
//!   MQT mapper (Zulehner et al., TCAD 2018).
//!
//! All implement [`circuit::Router`] and emit [`circuit::RoutedCircuit`]s
//! checkable by the independent verifier.
//!
//! # Examples
//!
//! ```
//! use circuit::{Router, verify::verify};
//! use heuristics::{Sabre, Tket, AStar};
//! let c = circuit::generators::qft(5);
//! let g = arch::devices::tokyo();
//! for router in [&Sabre::default() as &dyn Router, &Tket::default(), &AStar::default()] {
//!     let routed = router.route(&c, &g)?;
//!     verify(&c, &g, &routed).expect("verifies");
//! }
//! # Ok::<(), circuit::RouteError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod astar;
mod dag;
pub mod placement;
mod sabre;
mod tket;

pub use astar::{AStar, AStarConfig};
pub use dag::DagFrontier;
pub use sabre::{Sabre, SabreConfig};
pub use tket::{Tket, TketConfig};

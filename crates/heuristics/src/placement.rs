//! Initial-placement heuristics shared by the baseline routers.

use arch::ConnectivityGraph;
use circuit::Circuit;

/// Greedy degree-matching placement: logical qubits in decreasing
/// interaction-degree order are assigned to free physical qubits chosen to
/// maximize adjacency to already-placed interaction partners (device degree
/// as tiebreak). Returns `map[q] = p`.
///
/// Falls back to the lowest-index free qubit for isolated logical qubits.
pub fn degree_matching_placement(circuit: &Circuit, graph: &ConnectivityGraph) -> Vec<usize> {
    let n_logical = circuit.num_qubits();
    let n_phys = graph.num_qubits();
    assert!(n_logical <= n_phys, "circuit does not fit");

    // Interaction weights between logical qubits.
    let mut weight = vec![vec![0usize; n_logical]; n_logical];
    let mut degree = vec![0usize; n_logical];
    for ((a, b), count) in circuit.interaction_histogram() {
        weight[a][b] += count;
        weight[b][a] += count;
        degree[a] += count;
        degree[b] += count;
    }
    let mut order: Vec<usize> = (0..n_logical).collect();
    order.sort_by_key(|&q| std::cmp::Reverse(degree[q]));

    let mut map = vec![usize::MAX; n_logical];
    let mut used = vec![false; n_phys];
    for &q in &order {
        let mut best: Option<(usize, (usize, usize))> = None; // (p, (adjacency, degree))
        for (p, &p_used) in used.iter().enumerate() {
            if p_used {
                continue;
            }
            // Affinity: interaction weight with partners already adjacent.
            let adjacency: usize = (0..n_logical)
                .filter(|&q2| map[q2] != usize::MAX && graph.are_adjacent(p, map[q2]))
                .map(|q2| weight[q][q2])
                .sum();
            let key = (adjacency, graph.neighbors(p).len());
            if best.is_none_or(|(_, k)| key > k) {
                best = Some((p, key));
            }
        }
        let (p, _) = best.expect("free physical qubit exists");
        map[q] = p;
        used[p] = true;
    }
    map
}

/// Sum over pending interactions of the shortest-path distance between the
/// operands' current positions (a routing-difficulty measure used by the
/// placement tests).
pub fn total_interaction_distance(
    circuit: &Circuit,
    graph: &ConnectivityGraph,
    map: &[usize],
) -> usize {
    circuit
        .two_qubit_interactions()
        .iter()
        .map(|&(_, a, b)| graph.distance(map[a.0], map[b.0]))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_is_injective_and_total() {
        let c = circuit::generators::random_local(8, 40, 7, 0.0, 5);
        let g = arch::devices::tokyo();
        let map = degree_matching_placement(&c, &g);
        assert_eq!(map.len(), 8);
        let mut seen = vec![false; g.num_qubits()];
        for &p in &map {
            assert!(p < g.num_qubits());
            assert!(!seen[p], "duplicate assignment");
            seen[p] = true;
        }
    }

    #[test]
    fn placement_beats_identity_on_structured_input() {
        // A star-shaped interaction graph placed on Tokyo should put the
        // hub on a high-degree qubit next to its partners.
        let mut c = Circuit::new(5);
        for i in 1..5 {
            c.cx(0, i);
            c.cx(0, i);
        }
        let g = arch::devices::tokyo();
        let map = degree_matching_placement(&c, &g);
        let placed = total_interaction_distance(&c, &g, &map);
        let identity: Vec<usize> = (0..5).collect();
        let trivial = total_interaction_distance(&c, &g, &identity);
        assert!(
            placed <= trivial,
            "placement {placed} vs identity {trivial}"
        );
        // Hub adjacent to every partner (Tokyo has degree-6 vertices).
        assert_eq!(placed, 8, "all four partners adjacent, two gates each");
    }

    #[test]
    fn handles_circuit_without_interactions() {
        let c = Circuit::new(3);
        let g = arch::devices::linear(4);
        let map = degree_matching_placement(&c, &g);
        assert_eq!(map.len(), 3);
    }
}

//! SABRE (Li, Ding, Xie — ASPLOS 2019): bidirectional heuristic mapping
//! with a decay-weighted lookahead swap score. This is the baseline the
//! paper reports a mean 6.97× cost ratio against (Fig. 12).

use arch::ConnectivityGraph;
use circuit::{
    Circuit, Gate, RouteError, RouteOutcome, RouteRequest, RoutedCircuit, RoutedOp, Router,
};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use sat::SolverTelemetry;

use crate::dag::DagFrontier;

/// SABRE configuration.
#[derive(Clone, Debug)]
pub struct SabreConfig {
    /// Size of the lookahead ("extended") set.
    pub extended_size: usize,
    /// Weight of the extended set in the swap score.
    pub extended_weight: f64,
    /// Multiplicative decay applied to recently swapped qubits.
    pub decay_delta: f64,
    /// Reset the decay table every this many swaps.
    pub decay_reset: usize,
    /// Number of forward/backward refinement rounds for the initial map.
    pub reverse_rounds: usize,
    /// RNG seed (initial map shuffle + tie breaking).
    pub seed: u64,
}

impl Default for SabreConfig {
    fn default() -> Self {
        SabreConfig {
            extended_size: 20,
            extended_weight: 0.5,
            decay_delta: 0.001,
            decay_reset: 5,
            reverse_rounds: 2,
            seed: 0,
        }
    }
}

/// The SABRE router.
///
/// # Examples
///
/// ```
/// use circuit::{Circuit, Router, verify::verify};
/// use heuristics::Sabre;
/// let mut c = Circuit::new(4);
/// c.cx(0, 1);
/// c.cx(0, 2);
/// c.cx(3, 2);
/// c.cx(0, 3);
/// let g = arch::devices::tokyo();
/// let routed = Sabre::default().route(&c, &g)?;
/// verify(&c, &g, &routed).expect("verifies");
/// # Ok::<(), circuit::RouteError>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct Sabre {
    config: SabreConfig,
}

impl Sabre {
    /// Creates a SABRE router with the given configuration.
    pub fn new(config: SabreConfig) -> Self {
        Sabre { config }
    }

    /// Creates a SABRE router with a specific RNG seed.
    pub fn with_seed(seed: u64) -> Self {
        Sabre {
            config: SabreConfig {
                seed,
                ..SabreConfig::default()
            },
        }
    }

    /// One routing pass from a fixed initial map. Returns the op sequence
    /// and the final map.
    fn pass(
        &self,
        circuit: &Circuit,
        graph: &ConnectivityGraph,
        initial_map: &[usize],
        emit_ops: bool,
    ) -> (Vec<RoutedOp>, Vec<usize>, usize) {
        let n_phys = graph.num_qubits();
        let mut pos: Vec<usize> = initial_map.to_vec(); // logical → physical
        let mut occupant: Vec<Option<usize>> = vec![None; n_phys];
        for (q, &p) in pos.iter().enumerate() {
            occupant[p] = Some(q);
        }
        let mut frontier = DagFrontier::new(circuit);
        let mut ops: Vec<RoutedOp> = Vec::new();
        let mut decay = vec![1.0f64; n_phys];
        let mut swaps_since_progress = 0usize;
        let mut swap_count = 0usize;

        while !frontier.is_done() {
            // Execute everything ready and executable.
            let mut progressed = false;
            loop {
                let front = frontier.front(circuit);
                let mut ran_any = false;
                for k in front {
                    let executable = match &circuit.gates()[k] {
                        Gate::One { .. } => true,
                        Gate::Two { a, b, .. } => graph.are_adjacent(pos[a.0], pos[b.0]),
                    };
                    if executable {
                        frontier.execute(circuit, k);
                        if emit_ops {
                            ops.push(RoutedOp::Logical(k));
                        }
                        ran_any = true;
                        progressed = true;
                    }
                }
                if !ran_any {
                    break;
                }
            }
            if frontier.is_done() {
                break;
            }
            if progressed {
                decay.iter_mut().for_each(|d| *d = 1.0);
                swaps_since_progress = 0;
            }

            // Blocked: pick the best-scoring swap among edges touching a
            // front-gate qubit.
            let front_pairs: Vec<(usize, usize)> = frontier
                .front(circuit)
                .into_iter()
                .filter_map(|k| match &circuit.gates()[k] {
                    Gate::Two { a, b, .. } => Some((a.0, b.0)),
                    Gate::One { .. } => None,
                })
                .collect();
            debug_assert!(!front_pairs.is_empty(), "blocked without 2q front gates");
            let extended = frontier.extended_set(circuit, self.config.extended_size);

            let mut candidates: Vec<(usize, usize)> = Vec::new();
            for &(qa, qb) in &front_pairs {
                for &p in &[pos[qa], pos[qb]] {
                    for &p2 in graph.neighbors(p) {
                        let e = (p.min(p2), p.max(p2));
                        if !candidates.contains(&e) {
                            candidates.push(e);
                        }
                    }
                }
            }

            let score = |swap: (usize, usize), pos: &[usize]| -> f64 {
                let moved = |p: usize| -> usize {
                    if p == swap.0 {
                        swap.1
                    } else if p == swap.1 {
                        swap.0
                    } else {
                        p
                    }
                };
                let front_cost: f64 = front_pairs
                    .iter()
                    .map(|&(qa, qb)| graph.distance(moved(pos[qa]), moved(pos[qb])) as f64)
                    .sum::<f64>()
                    / front_pairs.len() as f64;
                let ext_cost: f64 = if extended.is_empty() {
                    0.0
                } else {
                    extended
                        .iter()
                        .map(|&(a, b)| graph.distance(moved(pos[a.0]), moved(pos[b.0])) as f64)
                        .sum::<f64>()
                        / extended.len() as f64
                };
                decay[swap.0].max(decay[swap.1])
                    * (front_cost + self.config.extended_weight * ext_cost)
            };

            let best = candidates
                .iter()
                .copied()
                .min_by(|&x, &y| {
                    score(x, &pos)
                        .partial_cmp(&score(y, &pos))
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .expect("candidate swaps exist while blocked");

            // Safety valve: if the decay heuristic thrashes, march the
            // first front pair together along a shortest path.
            let chosen = if swaps_since_progress > 4 * n_phys {
                let (qa, qb) = front_pairs[0];
                let path = graph
                    .shortest_path(pos[qa], pos[qb])
                    .expect("device is connected");
                (path[0].min(path[1]), path[0].max(path[1]))
            } else {
                best
            };

            let (x, y) = chosen;
            if let (Some(_), _) | (_, Some(_)) = (occupant[x], occupant[y]) {
                if let Some(q) = occupant[x] {
                    pos[q] = y;
                }
                if let Some(q) = occupant[y] {
                    pos[q] = x;
                }
                occupant.swap(x, y);
            }
            if emit_ops {
                ops.push(RoutedOp::Swap(x, y));
            }
            swap_count += 1;
            swaps_since_progress += 1;
            decay[x] += self.config.decay_delta;
            decay[y] += self.config.decay_delta;
            if swap_count.is_multiple_of(self.config.decay_reset) {
                decay.iter_mut().for_each(|d| *d = 1.0);
            }
        }
        (ops, pos, swap_count)
    }
}

/// Reverses a circuit (gate order only; inverses are irrelevant for QMR).
fn reversed(circuit: &Circuit) -> Circuit {
    let mut r = Circuit::new(circuit.num_qubits());
    for g in circuit.gates().iter().rev() {
        r.push(g.clone());
    }
    r
}

impl Sabre {
    /// The routing pass proper, after request validation.
    fn route_impl(
        &self,
        circuit: &Circuit,
        graph: &ConnectivityGraph,
    ) -> Result<RoutedCircuit, RouteError> {
        let mut rng = StdRng::seed_from_u64(self.config.seed);

        // Random initial permutation, refined by forward/backward passes.
        let mut phys: Vec<usize> = (0..graph.num_qubits()).collect();
        phys.shuffle(&mut rng);
        let mut map: Vec<usize> = phys[..circuit.num_qubits()].to_vec();
        let rev = reversed(circuit);
        for _ in 0..self.config.reverse_rounds {
            let (_, final_map, _) = self.pass(circuit, graph, &map, false);
            let (_, back_map, _) = self.pass(&rev, graph, &final_map, false);
            map = back_map;
        }
        let (ops, _, _) = self.pass(circuit, graph, &map, true);
        Ok(RoutedCircuit::new(map, ops))
    }
}

impl Router for Sabre {
    fn name(&self) -> &str {
        "sabre"
    }

    fn route_request(&self, request: &RouteRequest<'_>) -> RouteOutcome {
        RouteOutcome::capture(self.name(), || {
            let result = request
                .validate()
                .and_then(|()| self.route_impl(request.circuit(), request.graph()));
            (result, SolverTelemetry::default())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuit::verify::verify;

    #[test]
    fn routes_paper_example() {
        let mut c = Circuit::new(4);
        c.cx(0, 1);
        c.cx(0, 2);
        c.cx(3, 2);
        c.cx(0, 3);
        let g = ConnectivityGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let routed = Sabre::default().route(&c, &g).expect("routes");
        verify(&c, &g, &routed).expect("verifies");
    }

    #[test]
    fn routes_random_circuits_on_tokyo() {
        let g = arch::devices::tokyo();
        for seed in 0..5 {
            let c = circuit::generators::random_local(10, 60, 9, 0.2, seed);
            let routed = Sabre::with_seed(seed).route(&c, &g).expect("routes");
            verify(&c, &g, &routed).expect("verifies");
        }
    }

    #[test]
    fn zero_swaps_when_interactions_fit() {
        // Nearest-neighbor chain on a line: a good heuristic needs no swaps.
        let c = circuit::generators::graycode(6);
        let g = arch::devices::linear(6);
        let routed = Sabre::default().route(&c, &g).expect("routes");
        verify(&c, &g, &routed).expect("verifies");
        assert_eq!(routed.swap_count(), 0, "graycode on a line needs no swaps");
    }

    #[test]
    fn deterministic_per_seed() {
        let g = arch::devices::tokyo();
        let c = circuit::generators::random_local(8, 40, 7, 0.1, 3);
        let a = Sabre::with_seed(7).route(&c, &g).expect("routes");
        let b = Sabre::with_seed(7).route(&c, &g).expect("routes");
        assert_eq!(a, b);
    }

    #[test]
    fn handles_sparse_device() {
        let g = arch::devices::tokyo_minus();
        let c = circuit::generators::random_local(12, 80, 11, 0.1, 1);
        let routed = Sabre::default().route(&c, &g).expect("routes");
        verify(&c, &g, &routed).expect("verifies");
    }
}

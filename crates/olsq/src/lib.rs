//! Constraint-based QMR baselines for the SATMAP (MICRO 2022) reproduction.
//!
//! The two exact tools of the paper's Q1 comparison, rebuilt on the same
//! MaxSAT substrate so the comparison isolates *encoding* differences (the
//! factor the paper credits for SATMAP's 3×-more-solved / 20–400×-faster
//! results):
//!
//! * [`Exhaustive`] — EX-MQT analogue: the naive `O(|Phys|²·|Logic|·|C|)`
//!   encoding with pairwise injectivity and per-edge frame axioms;
//! * [`Transition`] — TB-OLSQ analogue: transition-based (time-coordinate)
//!   encoding with order-encoded schedules and iterative block deepening.
//!
//! Both routers are generic over [`sat::SatBackend`] (the concrete solver
//! is never named here), take their deadline-based
//! [`sat::ResourceBudget`] and portfolio width from each
//! [`circuit::RouteRequest`], and report [`sat::SolverTelemetry`] through
//! the returned [`circuit::RouteOutcome`].
//!
//! # Examples
//!
//! ```
//! use circuit::{Circuit, Router};
//! use olsq::Transition;
//! let mut c = Circuit::new(2);
//! c.cx(0, 1);
//! let g = arch::devices::linear(2);
//! assert_eq!(Transition::default().route(&c, &g)?.swap_count(), 0);
//! # Ok::<(), circuit::RouteError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod exhaustive;
mod transition;

pub use exhaustive::Exhaustive;
pub use transition::Transition;

/// The `maxsat` engine options a request resolves to for these baselines:
/// portfolio width from the parallelism hint, search strategy from the
/// request's strategy knob.
pub(crate) fn engine_options(request: &circuit::RouteRequest<'_>) -> maxsat::SolveOptions {
    let strategy = match request.strategy() {
        // The baselines solve unweighted swap-count objectives only, so
        // the feature-resolved `Auto` default always lands on linear.
        circuit::SearchStrategy::Auto | circuit::SearchStrategy::Linear => {
            maxsat::Strategy::LinearSatUnsat
        }
        circuit::SearchStrategy::CoreGuided => maxsat::Strategy::CoreGuided,
        circuit::SearchStrategy::Race => maxsat::Strategy::Race,
    };
    maxsat::SolveOptions::default()
        .with_portfolio_width(request.parallelism().resolve())
        .with_strategy(strategy)
}

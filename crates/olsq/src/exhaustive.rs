//! EX-MQT-style baseline: the *naive* constraint encoding of QMR.
//!
//! Semantically identical to SATMAP's encoding but deliberately built the
//! way the earlier exact mappers (Wille/Burgholzer/Zulehner, DAC 2019)
//! built theirs — the paper attributes EX-MQT's poor scalability to
//! encoding size, and this module reproduces that size:
//!
//! * **pairwise** injectivity clauses, `O(|Phys|² · |Logic|)` per state
//!   (instead of the sequential only-one encoding);
//! * gate executability via full **edge-pair enumeration** with a Tseitin
//!   auxiliary per (gate, directed edge);
//! * swap effects with **per-edge frame axioms**,
//!   `O(|Edges| · |Logic| · |Phys|)` clauses per slot (no `touched`
//!   auxiliaries);
//! * no slicing, no relaxations: one monolithic MaxSAT instance.

use std::marker::PhantomData;

use arch::ConnectivityGraph;
use circuit::{Circuit, RouteError, RouteOutcome, RouteRequest, RoutedCircuit, RoutedOp, Router};
use maxsat::{MaxSatStatus, WcnfInstance};
use sat::{DefaultBackend, Lit, SatBackend, SolverTelemetry, Var};

/// The exhaustive-encoding router (EX-MQT analogue), generic over the SAT
/// backend driving the MaxSAT engine. The solve budget and portfolio
/// width come from each [`RouteRequest`].
///
/// # Examples
///
/// ```
/// use circuit::{Circuit, Router, verify::verify};
/// use olsq::Exhaustive;
/// let mut c = Circuit::new(3);
/// c.cx(0, 1);
/// c.cx(1, 2);
/// let g = arch::devices::linear(3);
/// let routed = Exhaustive::default().route(&c, &g)?;
/// verify(&c, &g, &routed).expect("verifies");
/// # Ok::<(), circuit::RouteError>(())
/// ```
#[derive(Debug)]
pub struct Exhaustive<B: SatBackend + Default + Send = DefaultBackend> {
    _backend: PhantomData<fn() -> B>,
}

impl<B: SatBackend + Default + Send> Clone for Exhaustive<B> {
    fn clone(&self) -> Self {
        Exhaustive {
            _backend: PhantomData,
        }
    }
}

impl Default for Exhaustive {
    fn default() -> Self {
        Exhaustive {
            _backend: PhantomData,
        }
    }
}

impl<B: SatBackend + Default + Send> Exhaustive<B> {
    /// Creates the router with an explicit SAT backend type.
    pub fn with_backend() -> Self {
        Exhaustive {
            _backend: PhantomData,
        }
    }
}

struct NaiveEncoding {
    instance: WcnfInstance,
    map_var: Vec<Vec<Vec<Var>>>, // [state][q][p]
    swap_var: Vec<Vec<Var>>,     // [slot][edge or noop]
    edges: Vec<(usize, usize)>,
    num_states: usize,
}

impl NaiveEncoding {
    fn build(circuit: &Circuit, graph: &ConnectivityGraph) -> Self {
        let interactions = circuit.two_qubit_interactions();
        let num_states = interactions.len().max(1);
        let num_slots = num_states - 1;
        let (nl, np) = (circuit.num_qubits(), graph.num_qubits());
        let mut instance = WcnfInstance::new();
        let map_var: Vec<Vec<Vec<Var>>> = (0..num_states)
            .map(|_| {
                (0..nl)
                    .map(|_| (0..np).map(|_| instance.new_var()).collect())
                    .collect()
            })
            .collect();
        let edges = graph.edges().to_vec();
        let swap_var: Vec<Vec<Var>> = (0..num_slots)
            .map(|_| (0..=edges.len()).map(|_| instance.new_var()).collect())
            .collect();
        let m = |s: usize, q: usize, p: usize| map_var[s][q][p].positive();
        let sw = |slot: usize, e: usize| swap_var[slot][e].positive();

        for s in 0..num_states {
            // Injectivity, fully pairwise (the blowup).
            for q in 0..nl {
                let lits: Vec<Lit> = (0..np).map(|p| m(s, q, p)).collect();
                instance.add_hard(lits); // at least one
                for p1 in 0..np {
                    for p2 in (p1 + 1)..np {
                        instance.add_hard([!m(s, q, p1), !m(s, q, p2)]);
                    }
                }
            }
            for p in 0..np {
                for q1 in 0..nl {
                    for q2 in (q1 + 1)..nl {
                        instance.add_hard([!m(s, q1, p), !m(s, q2, p)]);
                    }
                }
            }
        }

        // Gate executability: Tseitin aux per (gate, directed edge).
        for (s, &(_, a, b)) in interactions.iter().enumerate() {
            let mut any = Vec::new();
            for &(x, y) in &edges {
                for (px, py) in [(x, y), (y, x)] {
                    let aux = instance.new_var().positive();
                    instance.add_hard([!aux, m(s, a.0, px)]);
                    instance.add_hard([!aux, m(s, b.0, py)]);
                    instance.add_hard([!m(s, a.0, px), !m(s, b.0, py), aux]);
                    any.push(aux);
                }
            }
            instance.add_hard(any);
        }

        // Swap slots: pairwise exactly-one + naive per-edge frame axioms.
        for slot in 0..num_slots {
            let n_choices = edges.len() + 1;
            let all: Vec<Lit> = (0..n_choices).map(|e| sw(slot, e)).collect();
            instance.add_hard(all);
            for e1 in 0..n_choices {
                for e2 in (e1 + 1)..n_choices {
                    instance.add_hard([!sw(slot, e1), !sw(slot, e2)]);
                }
            }
            for (e, &(x, y)) in edges.iter().enumerate() {
                for q in 0..nl {
                    // Movement across the chosen edge.
                    instance.add_hard([!sw(slot, e), !m(slot, q, x), m(slot + 1, q, y)]);
                    instance.add_hard([!sw(slot, e), !m(slot, q, y), m(slot + 1, q, x)]);
                    // Naive frame: every other position copied, per edge.
                    for p in 0..np {
                        if p != x && p != y {
                            instance.add_hard([!sw(slot, e), !m(slot, q, p), m(slot + 1, q, p)]);
                        }
                    }
                }
            }
            // No-op frame.
            let noop = sw(slot, edges.len());
            for q in 0..nl {
                for p in 0..np {
                    instance.add_hard([!noop, !m(slot, q, p), m(slot + 1, q, p)]);
                }
            }
            instance.add_soft(1, [noop]);
        }

        NaiveEncoding {
            instance,
            map_var,
            swap_var,
            edges,
            num_states,
        }
    }

    fn decode(&self, model: &[bool]) -> (Vec<usize>, Vec<Option<(usize, usize)>>) {
        let value = |v: Var| model.get(v.index()).copied().unwrap_or(false);
        let initial: Vec<usize> = self.map_var[0]
            .iter()
            .map(|row| {
                row.iter()
                    .position(|&v| value(v))
                    .expect("total map in model")
            })
            .collect();
        let swaps = self
            .swap_var
            .iter()
            .map(|slot| {
                let e = slot
                    .iter()
                    .position(|&v| value(v))
                    .expect("exactly-one swap");
                if e == self.edges.len() {
                    None
                } else {
                    Some(self.edges[e])
                }
            })
            .collect();
        (initial, swaps)
    }
}

impl<B: SatBackend + Default + Send> Exhaustive<B> {
    fn route_impl(
        &self,
        request: &RouteRequest<'_>,
    ) -> (Result<RoutedCircuit, RouteError>, SolverTelemetry) {
        let mut telemetry = SolverTelemetry::new();
        if let Err(e) = request.validate() {
            return (Err(e), telemetry);
        }
        let (circuit, graph) = (request.circuit(), request.graph());
        let options = crate::engine_options(request);
        let budget = request.budget().arm();
        // Memory guard (the paper's 5 GB cap analogue): the naive encoding
        // grows as |C|·|Edges|·|Logic|·|Phys| and is the reason EX-MQT
        // stops early; refuse rather than thrash.
        let est = circuit.num_two_qubit_gates().max(1)
            * graph.num_edges()
            * circuit.num_qubits()
            * graph.num_qubits();
        if request.budget().is_limited() && est > 40_000_000 {
            return (Err(RouteError::Timeout), telemetry);
        }
        let encode_start = std::time::Instant::now();
        let enc = NaiveEncoding::build(circuit, graph);
        telemetry.encode_time += encode_start.elapsed();
        let out = maxsat::solve_with_options::<B>(&enc.instance, &budget, &options);
        telemetry.absorb(&out.telemetry);
        match out.status {
            MaxSatStatus::Optimal | MaxSatStatus::Feasible => {
                let model = out.model.expect("status implies model");
                let (initial, swaps) = enc.decode(&model);
                let mut ops = Vec::new();
                let mut two_q_seen = 0usize;
                for (k, g) in circuit.gates().iter().enumerate() {
                    if g.is_two_qubit() {
                        if two_q_seen > 0 {
                            if let Some((x, y)) = swaps[two_q_seen - 1] {
                                ops.push(RoutedOp::Swap(x, y));
                            }
                        }
                        two_q_seen += 1;
                    }
                    ops.push(RoutedOp::Logical(k));
                }
                let _ = enc.num_states;
                (Ok(RoutedCircuit::new(initial, ops)), telemetry)
            }
            MaxSatStatus::Unsat => (
                Err(RouteError::Unsatisfiable(
                    "no routing with one swap per gap".into(),
                )),
                telemetry,
            ),
            MaxSatStatus::Unknown => (Err(RouteError::Timeout), telemetry),
        }
    }
}

impl<B: SatBackend + Default + Send> Router for Exhaustive<B> {
    fn name(&self) -> &str {
        "ex-mqt"
    }

    fn route_request(&self, request: &RouteRequest<'_>) -> RouteOutcome {
        RouteOutcome::capture(self.name(), || self.route_impl(request))
            .with_diagnostic("encoding", "naive-exhaustive")
            .with_diagnostic("portfolio_width", request.parallelism().resolve())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuit::verify::verify;

    #[test]
    fn solves_paper_example_with_one_swap() {
        let mut c = Circuit::new(4);
        c.cx(0, 1);
        c.cx(0, 2);
        c.cx(3, 2);
        c.cx(0, 3);
        let g = ConnectivityGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let routed = Exhaustive::default().route(&c, &g).expect("solves");
        verify(&c, &g, &routed).expect("verifies");
        assert_eq!(routed.swap_count(), 1, "optimal like SATMAP");
    }

    #[test]
    fn agrees_with_zero_swap_instances() {
        let c = circuit::generators::graycode(4);
        let g = arch::devices::linear(4);
        let routed = Exhaustive::default().route(&c, &g).expect("solves");
        verify(&c, &g, &routed).expect("verifies");
        assert_eq!(routed.swap_count(), 0);
    }

    #[test]
    fn times_out_gracefully() {
        let c = circuit::generators::random_local(8, 60, 7, 0.0, 1);
        let g = arch::devices::tokyo();
        let request = RouteRequest::new(&c, &g).with_budget(std::time::Duration::ZERO);
        let outcome = Exhaustive::<DefaultBackend>::default().route_request(&request);
        assert!(matches!(outcome.error(), Some(RouteError::Timeout)));
    }
}

//! TB-OLSQ-style baseline: a *transition-based* ("time coordinate")
//! encoding (Tan & Cong, ICCAD 2020).
//!
//! Gates are assigned to a small number of *blocks*; all gates in a block
//! execute under the same mapping, and between blocks a *transition* may
//! apply any set of disjoint SWAPs. The solver iteratively deepens the
//! block count until satisfiable, then minimizes the number of SWAPs.
//!
//! TB-OLSQ's SMT formulation uses integer time coordinates; here the
//! integer arithmetic is emulated with order-encoded Booleans
//! (`time_le(g, k)` chains), which is what makes this encoding heavier
//! than SATMAP's sketch-based one — reproducing the paper's Q1 gap from
//! the same cause it identifies (theory reasoning vs. plain SAT).

use std::marker::PhantomData;

use arch::ConnectivityGraph;
use circuit::{Circuit, RouteError, RouteOutcome, RouteRequest, RoutedCircuit, RoutedOp, Router};
use maxsat::encodings::{at_most_one, exactly_one};
use maxsat::{MaxSatStatus, WcnfInstance};
use sat::{DefaultBackend, Lit, SatBackend, SolverTelemetry, Var};

/// The transition-based router (TB-OLSQ analogue), generic over the SAT
/// backend driving the MaxSAT engine. The deepening budget and portfolio
/// width come from each [`RouteRequest`].
///
/// # Examples
///
/// ```
/// use circuit::{Circuit, Router, verify::verify};
/// use olsq::Transition;
/// let mut c = Circuit::new(3);
/// c.cx(0, 1);
/// c.cx(0, 2);
/// let g = arch::devices::linear(3);
/// let routed = Transition::default().route(&c, &g)?;
/// verify(&c, &g, &routed).expect("verifies");
/// # Ok::<(), circuit::RouteError>(())
/// ```
#[derive(Debug)]
pub struct Transition<B: SatBackend + Default + Send = DefaultBackend> {
    _backend: PhantomData<fn() -> B>,
}

impl<B: SatBackend + Default + Send> Clone for Transition<B> {
    fn clone(&self) -> Self {
        Transition {
            _backend: PhantomData,
        }
    }
}

impl Default for Transition {
    fn default() -> Self {
        Transition {
            _backend: PhantomData,
        }
    }
}

impl<B: SatBackend + Default + Send> Transition<B> {
    /// Creates the router with an explicit SAT backend type.
    pub fn with_backend() -> Self {
        Transition {
            _backend: PhantomData,
        }
    }
}

/// Decoded model: initial map, per-gate block, per-transition swap sets.
type DecodedSchedule = (Vec<usize>, Vec<usize>, Vec<Vec<(usize, usize)>>);

struct TransitionEncoding {
    instance: WcnfInstance,
    map_var: Vec<Vec<Vec<Var>>>, // [block][q][p]
    time_le: Vec<Vec<Var>>,      // [gate][block]: scheduled at block ≤ k
    swap_var: Vec<Vec<Var>>,     // [transition][edge]
    edges: Vec<(usize, usize)>,
    blocks: usize,
}

impl TransitionEncoding {
    fn build(circuit: &Circuit, graph: &ConnectivityGraph, blocks: usize) -> Self {
        let interactions = circuit.two_qubit_interactions();
        let (nl, np) = (circuit.num_qubits(), graph.num_qubits());
        let mut instance = WcnfInstance::new();
        let map_var: Vec<Vec<Vec<Var>>> = (0..blocks)
            .map(|_| {
                (0..nl)
                    .map(|_| (0..np).map(|_| instance.new_var()).collect())
                    .collect()
            })
            .collect();
        let time_le: Vec<Vec<Var>> = (0..interactions.len())
            .map(|_| (0..blocks).map(|_| instance.new_var()).collect())
            .collect();
        let edges = graph.edges().to_vec();
        let swap_var: Vec<Vec<Var>> = (0..blocks.saturating_sub(1))
            .map(|_| (0..edges.len()).map(|_| instance.new_var()).collect())
            .collect();

        let m = |k: usize, q: usize, p: usize| map_var[k][q][p].positive();
        let tle = |g: usize, k: usize| time_le[g][k].positive();
        let sw = |t: usize, e: usize| swap_var[t][e].positive();

        // Injectivity per block (compact only-one, like TB-OLSQ).
        for k in 0..blocks {
            for q in 0..nl {
                let lits: Vec<Lit> = (0..np).map(|p| m(k, q, p)).collect();
                exactly_one(&mut instance, &lits);
            }
            for p in 0..np {
                let lits: Vec<Lit> = (0..nl).map(|q| m(k, q, p)).collect();
                at_most_one(&mut instance, &lits);
            }
        }

        // Order-encoded schedule: monotone chains, final block mandatory.
        for g in 0..interactions.len() {
            for k in 0..blocks - 1 {
                instance.add_hard([!tle(g, k), tle(g, k + 1)]);
            }
            instance.add_hard([tle(g, blocks - 1)]);
        }

        // Dependencies: an earlier gate sharing a qubit is scheduled no
        // later than the dependent gate.
        for (i, &(_, a1, b1)) in interactions.iter().enumerate() {
            for (j, &(_, a2, b2)) in interactions.iter().enumerate().skip(i + 1) {
                let shares = [a1, b1].iter().any(|q| *q == a2 || *q == b2);
                if shares {
                    for k in 0..blocks {
                        instance.add_hard([!tle(j, k), tle(i, k)]);
                    }
                }
            }
        }

        // Executability: gate scheduled exactly at block k runs under map k.
        for (g, &(_, a, b)) in interactions.iter().enumerate() {
            for k in 0..blocks {
                for p in 0..np {
                    // (tle(g,k) ∧ ¬tle(g,k−1) ∧ map(a,p,k)) → ⋁ map(b,p',k)
                    let mut clause = vec![!tle(g, k), !m(k, a.0, p)];
                    if k > 0 {
                        clause.push(tle(g, k - 1));
                    }
                    clause.extend(graph.neighbors(p).iter().map(|&p2| m(k, b.0, p2)));
                    instance.add_hard(clause);
                }
            }
        }

        // Transitions: disjoint swap sets with touched-style frame axioms.
        for t in 0..blocks.saturating_sub(1) {
            // At most one swap touching each physical qubit.
            for p in 0..np {
                let incident: Vec<Lit> = edges
                    .iter()
                    .enumerate()
                    .filter(|(_, &(x, y))| x == p || y == p)
                    .map(|(e, _)| sw(t, e))
                    .collect();
                at_most_one(&mut instance, &incident);
            }
            let touched: Vec<Lit> = (0..np).map(|_| instance.new_var().positive()).collect();
            for (p, &touched_p) in touched.iter().enumerate() {
                let mut any = vec![!touched_p];
                for (e, &(x, y)) in edges.iter().enumerate() {
                    if x == p || y == p {
                        instance.add_hard([!sw(t, e), touched_p]);
                        any.push(sw(t, e));
                    }
                }
                instance.add_hard(any);
            }
            for (e, &(x, y)) in edges.iter().enumerate() {
                for q in 0..nl {
                    instance.add_hard([!sw(t, e), !m(t, q, x), m(t + 1, q, y)]);
                    instance.add_hard([!sw(t, e), !m(t, q, y), m(t + 1, q, x)]);
                }
            }
            for (p, &touched_p) in touched.iter().enumerate() {
                for q in 0..nl {
                    instance.add_hard([touched_p, !m(t, q, p), m(t + 1, q, p)]);
                }
            }
            // Soft: minimize swaps.
            for e in 0..edges.len() {
                instance.add_soft(1, [!sw(t, e)]);
            }
        }

        TransitionEncoding {
            instance,
            map_var,
            time_le,
            swap_var,
            edges,
            blocks,
        }
    }

    fn decode(&self, model: &[bool], num_gates: usize) -> DecodedSchedule {
        let value = |v: Var| model.get(v.index()).copied().unwrap_or(false);
        let initial: Vec<usize> = self.map_var[0]
            .iter()
            .map(|row| row.iter().position(|&v| value(v)).expect("total map"))
            .collect();
        let block_of: Vec<usize> = (0..num_gates)
            .map(|g| {
                (0..self.blocks)
                    .find(|&k| value(self.time_le[g][k]))
                    .expect("scheduled")
            })
            .collect();
        let swaps: Vec<Vec<(usize, usize)>> = self
            .swap_var
            .iter()
            .map(|tr| {
                tr.iter()
                    .enumerate()
                    .filter(|&(_, &v)| value(v))
                    .map(|(e, _)| self.edges[e])
                    .collect()
            })
            .collect();
        (initial, block_of, swaps)
    }
}

impl<B: SatBackend + Default + Send> Transition<B> {
    fn route_impl(
        &self,
        request: &RouteRequest<'_>,
    ) -> (Result<RoutedCircuit, RouteError>, SolverTelemetry) {
        let mut telemetry = SolverTelemetry::new();
        if let Err(e) = request.validate() {
            return (Err(e), telemetry);
        }
        let (circuit, graph) = (request.circuit(), request.graph());
        let options = crate::engine_options(request);
        let budget = request.budget().arm();
        let interactions = circuit.two_qubit_interactions();
        let max_blocks = interactions.len().max(1) + 1;
        let mut blocks = 1usize;
        loop {
            if budget.expired() {
                return (Err(RouteError::Timeout), telemetry);
            }
            // Memory guard (5 GB cap analogue): the dependency matrix grows
            // as |C|²·K; refuse rather than thrash.
            let g2 = interactions.len() * interactions.len();
            if request.budget().is_limited() && g2.saturating_mul(blocks) > 80_000_000 {
                return (Err(RouteError::Timeout), telemetry);
            }
            let encode_start = std::time::Instant::now();
            let enc = TransitionEncoding::build(circuit, graph, blocks);
            telemetry.encode_time += encode_start.elapsed();
            let out = maxsat::solve_with_options::<B>(&enc.instance, &budget, &options);
            telemetry.absorb(&out.telemetry);
            match out.status {
                MaxSatStatus::Optimal | MaxSatStatus::Feasible => {
                    let model = out.model.expect("status implies model");
                    let (initial, block_of, swaps) = enc.decode(&model, interactions.len());
                    let routed = assemble(circuit, &interactions, initial, &block_of, &swaps);
                    return (Ok(routed), telemetry);
                }
                MaxSatStatus::Unknown => return (Err(RouteError::Timeout), telemetry),
                MaxSatStatus::Unsat if blocks < max_blocks => {
                    blocks = (blocks * 2).min(max_blocks);
                }
                MaxSatStatus::Unsat => {
                    return (
                        Err(RouteError::Unsatisfiable(
                            "no transition schedule found".into(),
                        )),
                        telemetry,
                    )
                }
            }
        }
    }
}

impl<B: SatBackend + Default + Send> Router for Transition<B> {
    fn name(&self) -> &str {
        "tb-olsq"
    }

    fn route_request(&self, request: &RouteRequest<'_>) -> RouteOutcome {
        RouteOutcome::capture(self.name(), || self.route_impl(request))
            .with_diagnostic("encoding", "transition-based")
            .with_diagnostic("portfolio_width", request.parallelism().resolve())
    }
}

/// Interleaves block-scheduled gates and transition swaps into a routed op
/// sequence (single-qubit gates follow their preceding two-qubit gate's
/// block; leading ones run first).
fn assemble(
    circuit: &Circuit,
    interactions: &[(usize, circuit::Qubit, circuit::Qubit)],
    initial: Vec<usize>,
    block_of: &[usize],
    swaps: &[Vec<(usize, usize)>],
) -> RoutedCircuit {
    // Assign every gate index a block: 2q gates use their schedule; 1q
    // gates inherit the block of the previous 2q gate on any of their
    // qubits (0 if none), which preserves per-qubit order.
    let num_blocks = swaps.len() + 1;
    let mut block_of_gate = vec![0usize; circuit.len()];
    let mut last_block_per_qubit = vec![0usize; circuit.num_qubits()];
    let mut next_2q = 0usize;
    for (k, g) in circuit.gates().iter().enumerate() {
        if g.is_two_qubit() {
            let b = block_of[next_2q];
            debug_assert_eq!(interactions[next_2q].0, k);
            next_2q += 1;
            block_of_gate[k] = b;
            for q in g.qubits() {
                last_block_per_qubit[q.0] = b;
            }
        } else {
            let b = g
                .qubits()
                .iter()
                .map(|q| last_block_per_qubit[q.0])
                .max()
                .unwrap_or(0);
            block_of_gate[k] = b;
        }
    }
    let mut ops = Vec::new();
    for b in 0..num_blocks {
        if b > 0 {
            for &(x, y) in &swaps[b - 1] {
                ops.push(RoutedOp::Swap(x, y));
            }
        }
        for (k, &bk) in block_of_gate.iter().enumerate() {
            if bk == b {
                ops.push(RoutedOp::Logical(k));
            }
        }
    }
    RoutedCircuit::new(initial, ops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuit::verify::verify;

    #[test]
    fn solves_paper_example() {
        let mut c = Circuit::new(4);
        c.cx(0, 1);
        c.cx(0, 2);
        c.cx(3, 2);
        c.cx(0, 3);
        let g = ConnectivityGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let routed = Transition::default().route(&c, &g).expect("solves");
        verify(&c, &g, &routed).expect("verifies");
        // Transition-based scheduling also needs exactly one swap here.
        assert_eq!(routed.swap_count(), 1);
    }

    #[test]
    fn zero_swap_when_one_block_suffices() {
        let c = circuit::generators::graycode(5);
        let g = arch::devices::linear(5);
        let routed = Transition::default().route(&c, &g).expect("solves");
        verify(&c, &g, &routed).expect("verifies");
        assert_eq!(routed.swap_count(), 0);
    }

    #[test]
    fn respects_dependencies_across_blocks() {
        let mut c = Circuit::new(4);
        c.cx(0, 1);
        c.h(1);
        c.cx(1, 3);
        c.cx(0, 2);
        let g = arch::devices::linear(4);
        let routed = Transition::default().route(&c, &g).expect("solves");
        verify(&c, &g, &routed).expect("verifies");
    }

    #[test]
    fn times_out_gracefully() {
        let c = circuit::generators::random_local(8, 40, 7, 0.0, 5);
        let g = arch::devices::tokyo();
        let request = RouteRequest::new(&c, &g).with_budget(std::time::Duration::ZERO);
        let outcome = Transition::<DefaultBackend>::default().route_request(&request);
        assert!(matches!(outcome.error(), Some(RouteError::Timeout)));
    }
}

//! Shared fixtures for the criterion benchmarks in `benches/`.
//!
//! Each benchmark group corresponds to one table or figure of the SATMAP
//! paper (scaled down so `cargo bench` terminates in minutes; the full
//! regeneration lives in the `satmap-experiments` binary).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Duration;

use circuit::Circuit;

/// Per-call budget used by constraint-based routers inside benchmarks.
pub fn bench_budget() -> Duration {
    Duration::from_millis(500)
}

/// A small fixed workload set representative of the paper's suite.
pub fn small_workloads() -> Vec<Circuit> {
    vec![
        circuit::generators::qft(4),
        circuit::generators::graycode(6),
        circuit::generators::random_local(5, 10, 4, 0.2, 1),
        circuit::generators::ising_model(6, 1),
    ]
}

/// The paper's Fig. 3 running example.
pub fn fig3() -> Circuit {
    let mut c = Circuit::new(4);
    c.cx(0, 1);
    c.cx(0, 2);
    c.cx(3, 2);
    c.cx(0, 3);
    c
}

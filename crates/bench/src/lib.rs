//! Shared fixtures for the criterion benchmarks in `benches/`, plus the
//! machine-readable report writer.
//!
//! Each benchmark group corresponds to one table or figure of the SATMAP
//! paper (scaled down so `cargo bench` terminates in minutes; the full
//! regeneration lives in the `satmap-experiments` binary). After all
//! groups run, the harness calls [`write_bench_json`] to emit
//! `BENCH_satmap.json` — per-benchmark and per-group median nanoseconds
//! plus the portfolio-vs-single speedup — so the perf trajectory is
//! comparable PR-over-PR without parsing stdout.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::io::Write as _;
use std::time::Duration;

use circuit::request::escape_json;
use circuit::Circuit;
use criterion::BenchResult;

/// Per-call budget used by constraint-based routers inside benchmarks.
/// Overridable via `SATMAP_BENCH_BUDGET_MS` (CI uses a smaller value for
/// its smoke run).
pub fn bench_budget() -> Duration {
    let ms = std::env::var("SATMAP_BENCH_BUDGET_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(500u64);
    Duration::from_millis(ms)
}

/// A small fixed workload set representative of the paper's suite.
pub fn small_workloads() -> Vec<Circuit> {
    vec![
        circuit::generators::qft(4),
        circuit::generators::graycode(6),
        circuit::generators::random_local(5, 10, 4, 0.2, 1),
        circuit::generators::ising_model(6, 1),
    ]
}

/// The paper's Fig. 3 running example.
pub fn fig3() -> Circuit {
    let mut c = Circuit::new(4);
    c.cx(0, 1);
    c.cx(0, 2);
    c.cx(3, 2);
    c.cx(0, 3);
    c
}

/// A random 3-CNF with a planted mostly-positive model, as DIMACS-style
/// literals (`±(var+1)`), deterministic in `seed`.
///
/// Every clause is satisfied by the planted assignment `x_i = (i % 7 !=
/// 0)`, so the formula is guaranteed satisfiable — but a solver branching
/// negative-first (the CDCL default phase) must refute many near-misses,
/// while a positive-phase or randomized worker lands close to the model
/// immediately. This is the classic workload where a *diversified*
/// portfolio wins on variance, independent of core count.
pub fn planted_cnf(num_vars: usize, num_clauses: usize, seed: u64) -> Vec<Vec<i64>> {
    let planted = |v: usize| !v.is_multiple_of(7);
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut clauses = Vec::with_capacity(num_clauses);
    while clauses.len() < num_clauses {
        let mut clause = Vec::with_capacity(3);
        for _ in 0..3 {
            let v = (next() % num_vars as u64) as usize;
            let positive = next() % 2 == 0;
            clause.push(if positive {
                (v + 1) as i64
            } else {
                -((v + 1) as i64)
            });
        }
        // Keep only clauses the planted model satisfies.
        let satisfied = clause
            .iter()
            .any(|&l| (l > 0) == planted(l.unsigned_abs() as usize - 1));
        if satisfied {
            clauses.push(clause);
        }
    }
    clauses
}

/// Pigeonhole clauses PHP(`pigeons`, `holes`) as DIMACS-style literals —
/// UNSAT whenever `pigeons > holes`, and exponentially hard for
/// resolution, which makes it the canonical conflict-heavy race for the
/// clause-sharing benchmarks (every worker learns clauses worth sharing).
pub fn pigeonhole_cnf(pigeons: usize, holes: usize) -> Vec<Vec<i64>> {
    let var = |p: usize, h: usize| (p * holes + h + 1) as i64;
    let mut clauses = Vec::new();
    for p in 0..pigeons {
        clauses.push((0..holes).map(|h| var(p, h)).collect());
    }
    for h in 0..holes {
        for p1 in 0..pigeons {
            for p2 in (p1 + 1)..pigeons {
                clauses.push(vec![-var(p1, h), -var(p2, h)]);
            }
        }
    }
    clauses
}

/// An unsatisfiable formula that hides a small pigeonhole core inside a
/// large planted-satisfiable 3-CNF camouflage region (variables are
/// disjoint; the pigeonhole block is shifted past `vars`). Returns the
/// clauses and the total variable count.
///
/// This is the family where clause sharing *pays*: refuting the instance
/// means refuting PHP(`pigeons`, `pigeons-1`), but a diversified worker
/// can wander the satisfiable camouflage first. The core's refutation
/// lemmas are short, low-LBD, and speak only core variables, so the
/// first worker to focus there exports lemmas that steer every peer out
/// of the camouflage — cooperation with a measurable wall-clock win
/// (unlike pure pigeonhole races, where all workers converge on the same
/// conflicts anyway and the exchange only adds drain overhead).
pub fn camouflaged_core_cnf(
    vars: usize,
    clauses: usize,
    pigeons: usize,
    seed: u64,
) -> (Vec<Vec<i64>>, usize) {
    let holes = pigeons - 1;
    let mut cnf = planted_cnf(vars, clauses, seed);
    let offset = vars as i64;
    for clause in pigeonhole_cnf(pigeons, holes) {
        cnf.push(
            clause
                .iter()
                .map(|&d| if d > 0 { d + offset } else { d - offset })
                .collect(),
        );
    }
    (cnf, vars + pigeons * holes)
}

/// A weighted placement MaxSAT instance: pigeonhole exclusivity as hard
/// clauses with one *soft* "pigeon is placed" clause per pigeon — optimum
/// cost `max(0, pigeons − holes)`. With `pigeons > holes` the linear
/// strategy must descend from a poor first incumbent while the core-guided
/// strategy pays exactly `pigeons − holes` cores into its lower bound:
/// the family behind the `maxsat_strategies` bench group and the
/// strategy-race regressions.
pub fn placement_wcnf(pigeons: usize, holes: usize) -> maxsat::WcnfInstance {
    let mut inst = maxsat::WcnfInstance::new();
    let var = |p: usize, h: usize| sat::Var::new(p * holes + h).positive();
    inst.reserve_vars(pigeons * holes);
    for h in 0..holes {
        for p1 in 0..pigeons {
            for p2 in (p1 + 1)..pigeons {
                inst.add_hard([!var(p1, h), !var(p2, h)]);
            }
        }
    }
    for p in 0..pigeons {
        inst.add_soft(1, (0..holes).map(|h| var(p, h)));
    }
    inst
}

/// The mutate-one-gate family behind the `warmstart` bench group: the
/// Fig. 3 running example plus two variants that each change exactly one
/// gate — the "edit a circuit, re-route it" pattern the encode/solve
/// split and the route cache are built for.
pub fn fig3_mutants() -> Vec<Circuit> {
    let base = fig3();
    let mut swap_target = Circuit::new(4);
    swap_target.cx(0, 1);
    swap_target.cx(0, 2);
    swap_target.cx(3, 2);
    swap_target.cx(1, 3);
    let mut swap_middle = Circuit::new(4);
    swap_middle.cx(0, 1);
    swap_middle.cx(0, 2);
    swap_middle.cx(1, 2);
    swap_middle.cx(0, 3);
    vec![base, swap_target, swap_middle]
}

/// Clause-sharing counters observed on one probe race (see
/// [`sharing_probe`]); embedded in the bench report so the JSON records
/// that the portfolio genuinely cooperates, not just races.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SharingProbe {
    /// Learned clauses exported across all workers.
    pub clauses_exported: u64,
    /// Learned clauses imported across all workers.
    pub clauses_imported: u64,
    /// Clause-arena compactions across all workers.
    pub compactions: u64,
    /// Final summed arena footprint in bytes.
    pub arena_bytes: u64,
}

/// Races a width-4 sharing portfolio on the pigeonhole family and returns
/// the exchange counters. `clauses_imported` must come back nonzero — the
/// CI schema check asserts it — because PHP(7,6) forces every worker
/// through many restarts, each an import point.
pub fn sharing_probe() -> SharingProbe {
    use sat::{PortfolioBackend, ResourceBudget, SatBackend, SharingConfig, SolveResult, Solver};
    let mut portfolio = PortfolioBackend::<Solver>::with_width(4);
    // PHP(7,6) sits far below the default `min_instance_size` gate; the
    // probe exists to witness cooperation, so open the gate explicitly.
    portfolio.set_sharing_config(SharingConfig {
        min_instance_size: 0,
        ..SharingConfig::default()
    });
    portfolio.reserve_vars(7 * 6);
    for clause in pigeonhole_cnf(7, 6) {
        let lits: Vec<sat::Lit> = clause.iter().map(|&d| sat::Lit::from_dimacs(d)).collect();
        portfolio.add_clause(&lits);
    }
    let result = portfolio.solve_under_assumptions(&[], &ResourceBudget::unlimited());
    assert_eq!(result, SolveResult::Unsat, "PHP(7,6) is unsatisfiable");
    let stats = *portfolio.stats();
    SharingProbe {
        clauses_exported: stats.clauses_exported,
        clauses_imported: stats.clauses_imported,
        compactions: stats.compactions,
        arena_bytes: stats.arena_bytes,
    }
}

/// Default output path of the bench report: `BENCH_satmap.json` at the
/// workspace root (bench binaries run with the *package* directory as
/// cwd, so a bare relative path would land in `crates/bench/`).
/// `SATMAP_BENCH_JSON` overrides it entirely.
pub fn bench_json_path() -> std::path::PathBuf {
    if let Some(p) = std::env::var_os("SATMAP_BENCH_JSON") {
        return p.into();
    }
    let manifest = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    manifest
        .ancestors()
        .nth(2)
        .unwrap_or(manifest)
        .join("BENCH_satmap.json")
}

/// Routes the Fig. 3 running example through every registered router and
/// returns one [`circuit::RouteOutcome::to_json`] row per router — the
/// same row schema the experiment sweeps emit via `SATMAP_ROWS_JSON`, so
/// the bench report and the sweeps stay machine-comparable.
pub fn route_rows() -> Vec<String> {
    let registry = routers::RouterRegistry::standard();
    let circuit = fig3();
    let graph = arch::devices::tokyo_minus();
    registry
        .names()
        .into_iter()
        .map(|name| {
            let request = circuit::RouteRequest::new(&circuit, &graph).with_budget(bench_budget());
            registry
                .route(name, &request)
                .expect("registered name")
                .to_json()
        })
        .collect()
}

/// Drains the results criterion collected and writes `BENCH_satmap.json`.
///
/// Layout: `benchmarks` maps every full benchmark id to its median ns;
/// `groups` maps each group (the id segment before the first `/`) to the
/// median over its members' medians; `portfolio_speedup` is
/// `median(portfolio/single) / median(portfolio/portfolio4)` when the
/// `portfolio` group ran (`> 1` means the portfolio was faster), else
/// `null`; `sharing_telemetry` holds the [`sharing_probe`] exchange
/// counters (nonzero `clauses_imported` is the cooperation witness CI
/// checks); `routes` holds one Fig. 3 outcome row per registered router
/// in the shared [`circuit::RouteOutcome::to_json`] schema.
///
/// # Errors
///
/// Propagates I/O failures from writing the report file.
pub fn write_bench_json() -> std::io::Result<std::path::PathBuf> {
    let results = criterion::take_results();
    let path = bench_json_path();
    let mut file = std::fs::File::create(&path)?;
    file.write_all(render_report(&results, &route_rows(), &sharing_probe()).as_bytes())?;
    Ok(path)
}

/// Renders the report (see [`write_bench_json`]) as a JSON string.
pub fn render_report(
    results: &[BenchResult],
    route_rows: &[String],
    sharing: &SharingProbe,
) -> String {
    let mut out = String::from("{\n  \"schema_version\": 1,\n  \"benchmarks\": {");
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    \"{}\": {}",
            escape_json(&r.id),
            r.median_ns
        ));
    }
    out.push_str("\n  },\n  \"groups\": {");

    let mut groups: Vec<(String, Vec<u128>)> = Vec::new();
    for r in results {
        let group = r.id.split('/').next().unwrap_or(&r.id).to_string();
        match groups.iter_mut().find(|(g, _)| *g == group) {
            Some((_, medians)) => medians.push(r.median_ns),
            None => groups.push((group, vec![r.median_ns])),
        }
    }
    for (i, (group, medians)) in groups.iter_mut().enumerate() {
        medians.sort_unstable();
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    \"{}\": {}",
            escape_json(group),
            medians[medians.len() / 2]
        ));
    }
    out.push_str("\n  },\n  \"portfolio_speedup\": ");

    let median_of = |prefix: &str| {
        let mut ns: Vec<u128> = results
            .iter()
            .filter(|r| r.id.starts_with(prefix))
            .map(|r| r.median_ns)
            .collect();
        ns.sort_unstable();
        if ns.is_empty() {
            None
        } else {
            Some(ns[ns.len() / 2])
        }
    };
    match (
        median_of("portfolio/single"),
        median_of("portfolio/portfolio"),
    ) {
        (Some(single), Some(portfolio)) if portfolio > 0 => {
            out.push_str(&format!("{:.3}", single as f64 / portfolio as f64));
        }
        _ => out.push_str("null"),
    }
    out.push_str(&format!(
        ",\n  \"sharing_telemetry\": {{\"clauses_exported\": {}, \"clauses_imported\": {}, \
         \"compactions\": {}, \"arena_bytes\": {}}}",
        sharing.clauses_exported,
        sharing.clauses_imported,
        sharing.compactions,
        sharing.arena_bytes
    ));
    out.push_str(",\n  \"routes\": [");
    for (i, row) in route_rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        out.push_str(row);
    }
    out.push_str("\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planted_cnf_is_satisfied_by_planted_model() {
        let cnf = planted_cnf(50, 200, 42);
        assert_eq!(cnf.len(), 200);
        let planted = |v: usize| !v.is_multiple_of(7);
        for clause in &cnf {
            assert_eq!(clause.len(), 3);
            assert!(clause
                .iter()
                .any(|&l| (l > 0) == planted(l.unsigned_abs() as usize - 1)));
        }
        // Deterministic in the seed.
        assert_eq!(cnf, planted_cnf(50, 200, 42));
        assert_ne!(cnf, planted_cnf(50, 200, 43));
    }

    #[test]
    fn report_includes_groups_and_speedup() {
        let results = vec![
            BenchResult {
                id: "q1/satmap/fig3".into(),
                median_ns: 30,
            },
            BenchResult {
                id: "q1/tket/fig3".into(),
                median_ns: 10,
            },
            BenchResult {
                id: "portfolio/single".into(),
                median_ns: 400,
            },
            BenchResult {
                id: "portfolio/portfolio4".into(),
                median_ns: 100,
            },
        ];
        let probe = SharingProbe {
            clauses_exported: 12,
            clauses_imported: 7,
            compactions: 1,
            arena_bytes: 2048,
        };
        let json = render_report(&results, &[], &probe);
        assert!(json.contains("\"q1/satmap/fig3\": 30"));
        assert!(json.contains("\"q1\": 30"), "group median of 10,30 is 30");
        assert!(json.contains("\"portfolio_speedup\": 4.000"), "{json}");
        assert!(json.contains("\"clauses_imported\": 7"), "{json}");
        assert!(json.contains("\"arena_bytes\": 2048"), "{json}");
        // Minimal well-formedness: balanced braces, no trailing comma.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(!json.contains(",\n  }"));
    }

    #[test]
    fn report_without_portfolio_group_is_null_speedup() {
        let json = render_report(
            &[BenchResult {
                id: "solo".into(),
                median_ns: 5,
            }],
            &[],
            &SharingProbe::default(),
        );
        assert!(json.contains("\"portfolio_speedup\": null"));
        assert!(json.contains("\"solo\": 5"));
    }

    #[test]
    fn empty_report_is_valid() {
        let json = render_report(&[], &[], &SharingProbe::default());
        assert!(json.contains("\"benchmarks\": {\n  }"));
        assert!(json.contains("\"portfolio_speedup\": null"));
        assert!(json.contains("\"sharing_telemetry\""));
        assert!(json.contains("\"routes\": [\n  ]"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn placement_wcnf_has_known_optimum() {
        let inst = placement_wcnf(4, 2);
        let out = maxsat::solve(&inst, sat::ResourceBudget::unlimited());
        assert_eq!(out.status, maxsat::MaxSatStatus::Optimal);
        assert_eq!(out.cost, Some(2), "4 pigeons, 2 holes: 2 must stay out");
        let sat_inst = placement_wcnf(3, 3);
        let sat_out = maxsat::solve(&sat_inst, sat::ResourceBudget::unlimited());
        assert_eq!(sat_out.cost, Some(0), "equal pigeons and holes all fit");
    }

    #[test]
    fn camouflaged_core_cnf_is_unsat_via_the_buried_core() {
        let (cnf, num_vars) = camouflaged_core_cnf(60, 240, 4, 3);
        // Camouflage clauses + 4 at-least-one rows + 3 * C(4,2) pairs.
        assert_eq!(cnf.len(), 240 + 4 + 3 * 6);
        assert_eq!(num_vars, 60 + 4 * 3);
        assert!(cnf
            .iter()
            .all(|c| c.iter().all(|&l| l.unsigned_abs() as usize <= num_vars)));
        let mut solver = sat::Solver::new();
        solver.reserve_vars(num_vars);
        for clause in &cnf {
            solver.add_clause(clause.iter().map(|&d| sat::Lit::from_dimacs(d)));
        }
        assert_eq!(
            solver.solve_under_assumptions(&[], &sat::ResourceBudget::unlimited()),
            sat::SolveResult::Unsat,
            "the pigeonhole block is untouched by the camouflage"
        );
    }

    #[test]
    fn pigeonhole_cnf_has_expected_shape() {
        let cnf = pigeonhole_cnf(3, 2);
        // 3 at-least-one rows + 2 * C(3,2) exclusivity pairs.
        assert_eq!(cnf.len(), 3 + 2 * 3);
        assert!(cnf.iter().all(|c| !c.is_empty()));
    }

    #[test]
    fn sharing_probe_observes_cooperation() {
        let probe = sharing_probe();
        assert!(probe.clauses_exported > 0, "{probe:?}");
        assert!(
            probe.clauses_imported > 0,
            "the pigeonhole race must import shared clauses: {probe:?}"
        );
        assert!(probe.arena_bytes > 0, "{probe:?}");
    }

    #[test]
    fn route_rows_cover_every_registered_router() {
        let rows = route_rows();
        assert_eq!(
            rows.len(),
            routers::RouterRegistry::standard().names().len()
        );
        for row in &rows {
            assert!(row.starts_with("{\"router\":\""), "{row}");
            assert_eq!(row.matches('{').count(), row.matches('}').count());
        }
        let json = render_report(&[], &rows, &SharingProbe::default());
        assert!(json.contains("\"routes\": [\n    {\"router\":"));
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}

//! Criterion benchmarks, one group per table/figure of the paper.
//!
//! These measure *scaled-down* instances so `cargo bench` finishes quickly;
//! the full-size regenerations (with per-instance budgets and the whole
//! 160-circuit suite) are produced by the `satmap-experiments` binary.
//!
//! Every router is constructed by name through `routers::RouterRegistry`
//! and driven by a `RouteRequest` carrying the per-call budget — no
//! concrete router type appears in this harness.

use bench::{
    bench_budget, camouflaged_core_cnf, fig3, fig3_mutants, placement_wcnf, planted_cnf,
    small_workloads,
};
use circuit::{
    Objective, Parallelism, RepeatedStructure, RouteRequest, Router, SearchStrategy, Slicing,
};
use criterion::{criterion_group, BenchmarkId, Criterion};
use routers::{BoxedRouter, RouterRegistry};
use sat::{
    ClauseSink, Lit, PortfolioBackend, ResourceBudget, SatBackend, SharingConfig, SolveResult,
    Solver,
};

fn create(name: &str) -> BoxedRouter {
    RouterRegistry::standard()
        .create(name)
        .unwrap_or_else(|e| panic!("{e}"))
}

/// Routes one circuit under the bench budget (the request every group
/// shares).
fn route<'a>(
    circuit: &'a circuit::Circuit,
    graph: &'a arch::ConnectivityGraph,
) -> RouteRequest<'a> {
    RouteRequest::new(circuit, graph).with_budget(bench_budget())
}

/// Fig. 1 / Table I / Figs. 10–11 (Q1): constraint-based tools on the same
/// instance — SATMAP vs the TB-OLSQ and EX-MQT analogues.
fn q1_constraint_tools(c: &mut Criterion) {
    let mut group = c.benchmark_group("q1_constraint_tools");
    group.sample_size(10);
    let circuit = fig3();
    let graph = arch::devices::tokyo_minus();
    let tools: Vec<(&str, BoxedRouter)> = vec![
        ("satmap", create("nl-satmap")),
        ("tb-olsq", create("olsq-tb")),
        ("ex-mqt", create("olsq")),
    ];
    for (name, tool) in &tools {
        group.bench_with_input(BenchmarkId::new(*name, "fig3"), &circuit, |b, circ| {
            b.iter(|| tool.route_request(&route(circ, &graph)))
        });
    }
    group.finish();
}

/// Fig. 12 (Q2): heuristic routers on the small workload set.
fn q2_heuristics(c: &mut Criterion) {
    let mut group = c.benchmark_group("q2_heuristics");
    let graph = arch::devices::tokyo();
    let workloads = small_workloads();
    let tools: Vec<(&str, BoxedRouter)> = vec![
        ("mqth-astar", create("astar")),
        ("sabre", create("sabre")),
        ("tket", create("tket")),
    ];
    for (name, tool) in &tools {
        for (i, w) in workloads.iter().enumerate() {
            group.bench_with_input(BenchmarkId::new(*name, i), w, |b, circ| {
                b.iter(|| tool.route_request(&route(circ, &graph)))
            });
        }
    }
    group.finish();
}

/// Fig. 2 / Table II / Fig. 13 (Q3): slice-size ablation — the local
/// relaxation at several slice sizes vs NL-SATMAP, all through one router
/// with per-request `Slicing` overrides.
fn q3_slice_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("q3_slice_sizes");
    group.sample_size(10);
    let graph = arch::devices::tokyo_minus();
    let circuit = circuit::generators::random_local(5, 12, 4, 0.1, 3);
    let satmap = create("satmap");
    for slice in [2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("sliced", slice), &circuit, |b, circ| {
            b.iter(|| {
                satmap.route_request(&route(circ, &graph).with_slicing(Slicing::Sliced(slice)))
            })
        });
    }
    let nl = create("nl-satmap");
    group.bench_with_input(BenchmarkId::new("nl-satmap", 0), &circuit, |b, circ| {
        b.iter(|| nl.route_request(&route(circ, &graph)))
    });
    group.finish();
}

/// Table IV (Q3): cyclic relaxation on QAOA vs unrolled solving.
fn q3_qaoa_cyclic(c: &mut Criterion) {
    let mut group = c.benchmark_group("q3_qaoa_cyclic");
    group.sample_size(10);
    let graph = arch::devices::tokyo();
    let n = 6usize;
    let cycles = 2usize;
    let edges = circuit::qaoa::three_regular_graph(n, 1);
    let sub = circuit::qaoa::qaoa_subcircuit(n, &edges, 0.4, 0.3);
    let full = sub.repeated(cycles);
    let repetition = RepeatedStructure {
        prefix_len: 0,
        cycles,
    };

    let cyc = create("cyc-satmap");
    group.bench_function("cyc-satmap", |b| {
        b.iter(|| cyc.route_request(&route(&full, &graph).with_repetition(repetition)))
    });
    let sm = create("satmap");
    group.bench_function("satmap-unrolled", |b| {
        b.iter(|| sm.route_request(&route(&full, &graph)))
    });
    let tket = create("tket");
    group.bench_function("tket", |b| {
        b.iter(|| tket.route_request(&route(&full, &graph)))
    });
    group.finish();
}

/// Fig. 14 (Q4): the same workload across Tokyo− / Tokyo / Tokyo+.
fn q4_architectures(c: &mut Criterion) {
    let mut group = c.benchmark_group("q4_architectures");
    group.sample_size(10);
    let circuit = circuit::generators::random_local(6, 10, 5, 0.1, 4);
    let satmap = create("satmap");
    let tket = create("tket");
    for graph in [
        arch::devices::tokyo_minus(),
        arch::devices::tokyo(),
        arch::devices::tokyo_plus(),
    ] {
        group.bench_with_input(
            BenchmarkId::new("satmap", graph.name()),
            &circuit,
            |b, circ| b.iter(|| satmap.route_request(&route(circ, &graph))),
        );
        group.bench_with_input(
            BenchmarkId::new("tket", graph.name()),
            &circuit,
            |b, circ| b.iter(|| tket.route_request(&route(circ, &graph))),
        );
    }
    group.finish();
}

/// Figs. 15–16 (Q5): solve time as the instance grows (the scalability
/// axis behind the time-budget sweep).
fn q5_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("q5_scaling");
    group.sample_size(10);
    let graph = arch::devices::tokyo_minus();
    let satmap = create("satmap");
    for gates in [4usize, 8, 16] {
        let circuit = circuit::generators::random_local(5, gates, 4, 0.0, 9);
        group.bench_with_input(BenchmarkId::new("satmap", gates), &circuit, |b, circ| {
            b.iter(|| satmap.route_request(&route(circ, &graph).with_slicing(Slicing::Sliced(4))))
        });
    }
    group.finish();
}

/// Q6: the weighted (fidelity) objective vs plain swap minimization —
/// selected per request on the same router.
fn q6_noise(c: &mut Criterion) {
    let mut group = c.benchmark_group("q6_noise");
    group.sample_size(10);
    let graph = arch::devices::tokyo();
    let noise = arch::NoiseModel::synthetic(&graph, 2022);
    let circuit = circuit::generators::random_local(4, 6, 3, 0.0, 5);
    let router = create("nl-satmap");
    group.bench_function("swap-count", |b| {
        b.iter(|| router.route_request(&route(&circuit, &graph)))
    });
    group.bench_function("fidelity", |b| {
        b.iter(|| {
            router.route_request(
                &route(&circuit, &graph).with_objective(Objective::Fidelity(noise.clone())),
            )
        })
    });
    group.finish();
}

/// Ablation: the `n` swaps-per-gap parameter (DESIGN.md design decision),
/// a per-request knob.
fn ablation_swaps_per_gap(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_swaps_per_gap");
    group.sample_size(10);
    let graph = arch::devices::tokyo_minus();
    let circuit = circuit::generators::random_local(5, 8, 4, 0.0, 6);
    let router = create("nl-satmap");
    for n in [1usize, 2] {
        group.bench_with_input(BenchmarkId::new("n", n), &circuit, |b, circ| {
            b.iter(|| router.route_request(&route(circ, &graph).with_swaps_per_gap(n)))
        });
    }
    group.finish();
}

/// Portfolio solving: a single default CDCL worker vs a 4-worker
/// diversified race on the same planted-model 3-CNF. The planted model is
/// mostly-positive, the worst case for the default negative-first phase —
/// exactly the variance a diversified portfolio erases, so this group is
/// the `portfolio_speedup` source in `BENCH_satmap.json`.
fn portfolio_race(c: &mut Criterion) {
    let mut group = c.benchmark_group("portfolio");
    group.sample_size(10);
    let cnf = planted_cnf(400, 1600, 5);
    let load = |backend: &mut dyn ClauseSink| {
        for clause in &cnf {
            let lits: Vec<Lit> = clause.iter().map(|&d| Lit::from_dimacs(d)).collect();
            backend.emit(&lits);
        }
    };
    group.bench_function("single", |b| {
        b.iter(|| {
            let mut s = Solver::new();
            s.reserve_vars(400);
            load(&mut s);
            assert_eq!(
                s.solve_under_assumptions(&[], &ResourceBudget::unlimited()),
                SolveResult::Sat
            );
        })
    });
    group.bench_function("portfolio4", |b| {
        b.iter(|| {
            let mut p = PortfolioBackend::<Solver>::with_width(4);
            p.reserve_vars(400);
            load(&mut p);
            assert_eq!(
                p.solve_under_assumptions(&[], &ResourceBudget::unlimited()),
                SolveResult::Sat
            );
        })
    });
    group.finish();
}

/// Clause sharing on vs off: the same width-4 diversified race on an
/// UNSAT instance whose pigeonhole core is camouflaged inside a large
/// planted-satisfiable region (see [`camouflaged_core_cnf`]). The first
/// worker to focus on the core exports its low-LBD refutation lemmas at
/// restart boundaries and steers every peer out of the camouflage, so
/// with sharing the race is cooperative rather than merely diversified;
/// the answers are identical either way (the parallel-stack tests assert
/// it), only the route shortens — `on` measures ~1.6-2x faster than
/// `off` here. The crossover this group used to sit on the wrong side of: on
/// bare conflict-heavy families like PHP(6,5), where every diversified
/// worker converges on the same conflicts unaided, the per-restart drain
/// overhead exceeds what the imports prune and `on` came out ~1.4x
/// *slower* — which is exactly the regime the default
/// `SharingConfig::min_instance_size` gate exists to skip.
/// `BENCH_satmap.json` records both medians.
fn sharing_race(c: &mut Criterion) {
    let mut group = c.benchmark_group("sharing");
    group.sample_size(10);
    let (cnf, num_vars) = camouflaged_core_cnf(500, 2000, 7, 3);
    let run = |sharing: bool| {
        let mut p = PortfolioBackend::<Solver>::with_width(4);
        p.set_sharing(sharing);
        // The camouflaged family still sits below the conservative default
        // size gate; this group measures the exchange itself, so open it.
        p.set_sharing_config(SharingConfig {
            min_instance_size: 0,
            ..SharingConfig::default()
        });
        p.reserve_vars(num_vars);
        for clause in &cnf {
            let lits: Vec<Lit> = clause.iter().map(|&d| Lit::from_dimacs(d)).collect();
            SatBackend::add_clause(&mut p, &lits);
        }
        assert_eq!(
            p.solve_under_assumptions(&[], &ResourceBudget::unlimited()),
            SolveResult::Unsat
        );
    };
    group.bench_function("on", |b| b.iter(|| run(true)));
    group.bench_function("off", |b| b.iter(|| run(false)));
    group.finish();
}

/// Arena clone vs re-emission: materializing three portfolio peers from a
/// loaded 1600-clause solver. `clone` is the flat-arena `memcpy` path the
/// portfolio now uses; `reemit` rebuilds each peer by replaying every
/// clause through `add_clause` (the pre-arena behaviour, paying
/// simplification and watch setup per clause per worker).
fn arena_clone_vs_reemit(c: &mut Criterion) {
    let mut group = c.benchmark_group("arena");
    let cnf = planted_cnf(400, 1600, 5);
    let mut template = Solver::new();
    template.reserve_vars(400);
    for clause in &cnf {
        template.add_clause(clause.iter().map(|&d| Lit::from_dimacs(d)));
    }
    group.bench_function("clone", |b| {
        b.iter(|| {
            let peers: Vec<Solver> = (0..3).map(|_| template.clone()).collect();
            assert_eq!(peers.len(), 3);
            peers
        })
    });
    group.bench_function("reemit", |b| {
        b.iter(|| {
            let peers: Vec<Solver> = (0..3)
                .map(|_| {
                    let mut s = Solver::new();
                    s.reserve_vars(400);
                    for clause in &cnf {
                        s.add_clause(clause.iter().map(|&d| Lit::from_dimacs(d)));
                    }
                    s
                })
                .collect();
            assert_eq!(peers.len(), 3);
            peers
        })
    });
    group.finish();
}

/// MaxSAT search strategies on the weighted placement family: the linear
/// SAT-UNSAT descent, the core-guided lower-bounding search, and the
/// first-proof-wins race of both. All three prove the same optimum; the
/// group records how their routes to the proof compare.
fn maxsat_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("maxsat_strategies");
    group.sample_size(10);
    let inst = placement_wcnf(7, 4);
    for (label, strategy) in [
        ("linear", maxsat::Strategy::LinearSatUnsat),
        ("core-guided", maxsat::Strategy::CoreGuided),
        ("race", maxsat::Strategy::Race),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let options = maxsat::SolveOptions::default().with_strategy(strategy);
                let out = maxsat::solve_with_options::<Solver>(
                    &inst,
                    &ResourceBudget::unlimited(),
                    &options,
                );
                assert_eq!(out.status, maxsat::MaxSatStatus::Optimal);
                assert_eq!(out.cost, Some(3), "7 pigeons, 4 holes");
                out
            })
        });
    }
    group.finish();
}

/// The weight-stratified core-guided search on the fidelity objective:
/// the exact WCNF behind the `q6_noise/fidelity` headline row (tokyo +
/// synthetic noise, first slice), solved by the full refinement stack
/// (stratification + core trimming + exhaustion + hardening, the
/// engine's default core-guided configuration), by the plain OLL loop
/// those refinements extend, and by the linear SAT-UNSAT descent. The
/// weighted softs here are many but carry few distinct weights, so the
/// diversity cap folds them into one stratum and the stratified search
/// descends from that stratum's incumbent instead of paying hundreds of
/// unit cores — the gap this group records is the source of the
/// `q6_noise/fidelity` speedup.
fn weighted_core(c: &mut Criterion) {
    let mut group = c.benchmark_group("weighted_core");
    group.sample_size(10);
    let graph = arch::devices::tokyo();
    let noise = arch::NoiseModel::synthetic(&graph, 2022);
    let circuit = circuit::generators::random_local(4, 6, 3, 0.0, 5);
    let encoding = satmap::encode::QmrEncoding::build(
        &circuit,
        &graph,
        1,
        satmap::encode::EncodeShape::first_slice(),
        &Objective::Fidelity(noise),
    );
    let core = maxsat::SolveOptions::default().with_strategy(maxsat::Strategy::CoreGuided);
    let configs = [
        ("stratified", core),
        ("plain", core.plain_core_guided()),
        (
            "linear",
            maxsat::SolveOptions::default().with_strategy(maxsat::Strategy::LinearSatUnsat),
        ),
    ];
    for (label, options) in &configs {
        group.bench_function(*label, |b| {
            b.iter(|| {
                let out = maxsat::solve_with_options::<Solver>(
                    encoding.instance(),
                    &ResourceBudget::unlimited(),
                    options,
                );
                assert!(out.cost.is_some(), "unexpected {:?}", out.status);
                out
            })
        });
    }
    group.finish();
}

/// The portfolio width chosen at request time: `Serial` vs an explicit
/// 4-wide race on the same monolithic route, through the same router.
fn portfolio_width_request(c: &mut Criterion) {
    let mut group = c.benchmark_group("portfolio_width");
    group.sample_size(10);
    let graph = arch::devices::tokyo_minus();
    let circuit = fig3();
    let router = create("nl-satmap");
    for (label, parallelism) in [
        ("serial", Parallelism::Serial),
        ("width4", Parallelism::Width(4)),
    ] {
        group.bench_with_input(BenchmarkId::new(label, "fig3"), &circuit, |b, circ| {
            b.iter(|| router.route_request(&route(circ, &graph).with_parallelism(parallelism)))
        });
    }
    group.finish();
}

/// Adaptive dispatch: the feature-sized `Auto` plan against a forced
/// serial linear solve and a forced 4-wide race, on one small family
/// (fig3, below the small-instance gate — the dispatcher degenerates to
/// exactly the serial linear solve, so `auto` must track `serial`) and
/// one hard family (above it — the dispatcher races heterogeneous
/// workers, so `auto` must be no slower than the best forced config).
fn dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("dispatch");
    group.sample_size(10);
    let graph = arch::devices::tokyo_minus();
    let router = create("nl-satmap");
    let families = [
        ("fig3", fig3()),
        (
            "random12",
            circuit::generators::random_local(5, 12, 4, 0.1, 3),
        ),
    ];
    let configs = [
        ("auto", Parallelism::Auto, SearchStrategy::Race),
        ("serial", Parallelism::Serial, SearchStrategy::Linear),
        ("width4", Parallelism::Width(4), SearchStrategy::Race),
    ];
    for (family, circuit) in &families {
        for (label, parallelism, strategy) in configs {
            group.bench_with_input(BenchmarkId::new(label, family), circuit, |b, circ| {
                b.iter(|| {
                    router.route_request(
                        &route(circ, &graph)
                            .with_parallelism(parallelism)
                            .with_strategy(strategy),
                    )
                })
            });
        }
    }
    group.finish();
}

/// Warm-start re-routing (the encode/solve split): the mutate-one-gate
/// Fig. 3 family routed three ways. `cold` encodes and solves each member
/// from scratch; `warm` re-solves from a forked prior session (encoding
/// skipped, clause DB and incumbent carried — the fork's arena memcpy is
/// charged to the measurement, honestly); `cache-hit` replays the
/// memoized outcome through `routers::RouteCache` without touching a
/// solver. The three medians land in `BENCH_satmap.json` as the
/// `warmstart/*` rows the schema check requires.
fn warmstart(c: &mut Criterion) {
    let mut group = c.benchmark_group("warmstart");
    group.sample_size(10);
    let graph = arch::devices::tokyo_minus();
    let family = fig3_mutants();
    let router = satmap::SatMap::new(satmap::SatMapConfig::monolithic());

    group.bench_function("cold", |b| {
        b.iter(|| {
            for circ in &family {
                assert!(router.route_request(&route(circ, &graph)).solved());
            }
        })
    });

    let slots: Vec<satmap::RouteSession<_>> = family
        .iter()
        .map(|circ| {
            let mut slot = None;
            assert!(router
                .route_with_session(&route(circ, &graph), &mut slot)
                .solved());
            slot.expect("solve deposits a session")
        })
        .collect();
    group.bench_function("warm", |b| {
        b.iter(|| {
            for (circ, base) in family.iter().zip(&slots) {
                let mut slot = base.fork();
                let out = router.route_with_session(&route(circ, &graph), &mut slot);
                assert!(out.telemetry().warm_start && out.solved());
            }
        })
    });

    let cache = routers::RouteCache::default();
    for circ in &family {
        let out = cache
            .route("nl-satmap", &route(circ, &graph))
            .expect("registered");
        assert!(out.solved());
    }
    group.bench_function("cache-hit", |b| {
        b.iter(|| {
            for circ in &family {
                let out = cache
                    .route("nl-satmap", &route(circ, &graph))
                    .expect("registered");
                assert!(out.telemetry().cache_hit);
            }
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    q1_constraint_tools,
    q2_heuristics,
    q3_slice_sizes,
    q3_qaoa_cyclic,
    q4_architectures,
    q5_scaling,
    q6_noise,
    ablation_swaps_per_gap,
    portfolio_race,
    portfolio_width_request,
    sharing_race,
    arena_clone_vs_reemit,
    maxsat_strategies,
    weighted_core,
    dispatch,
    warmstart
);

fn main() {
    benches();
    // Emit the machine-readable report next to the human-readable stdout
    // (satisfying CI's harness-error check: a failed write fails the run).
    let path = bench::write_bench_json().expect("write BENCH_satmap.json");
    println!("bench report written to {}", path.display());
}

//! Criterion benchmarks, one group per table/figure of the paper.
//!
//! These measure *scaled-down* instances so `cargo bench` finishes quickly;
//! the full-size regenerations (with per-instance budgets and the whole
//! 160-circuit suite) are produced by the `satmap-experiments` binary.

use bench::{bench_budget, fig3, planted_cnf, small_workloads};
use circuit::Router;
use criterion::{criterion_group, BenchmarkId, Criterion};
use heuristics::{AStar, Sabre, Tket};
use olsq::{Exhaustive, Transition};
use sat::{ClauseSink, Lit, PortfolioBackend, ResourceBudget, SatBackend, SolveResult, Solver};
use satmap::{CyclicSatMap, Objective, SatMap, SatMapConfig};

/// Fig. 1 / Table I / Figs. 10–11 (Q1): constraint-based tools on the same
/// instance — SATMAP vs the TB-OLSQ and EX-MQT analogues.
fn q1_constraint_tools(c: &mut Criterion) {
    let mut group = c.benchmark_group("q1_constraint_tools");
    group.sample_size(10);
    let circuit = fig3();
    let graph = arch::devices::tokyo_minus();
    let tools: Vec<(&str, Box<dyn Router>)> = vec![
        (
            "satmap",
            Box::new(SatMap::new(
                SatMapConfig::monolithic().with_budget(bench_budget()),
            )),
        ),
        ("tb-olsq", Box::new(Transition::with_budget(bench_budget()))),
        ("ex-mqt", Box::new(Exhaustive::with_budget(bench_budget()))),
    ];
    for (name, tool) in &tools {
        group.bench_with_input(BenchmarkId::new(*name, "fig3"), &circuit, |b, circ| {
            b.iter(|| tool.route(circ, &graph))
        });
    }
    group.finish();
}

/// Fig. 12 (Q2): heuristic routers on the small workload set.
fn q2_heuristics(c: &mut Criterion) {
    let mut group = c.benchmark_group("q2_heuristics");
    let graph = arch::devices::tokyo();
    let workloads = small_workloads();
    let tools: Vec<(&str, Box<dyn Router>)> = vec![
        ("mqth-astar", Box::new(AStar::default())),
        ("sabre", Box::new(Sabre::default())),
        ("tket", Box::new(Tket::default())),
    ];
    for (name, tool) in &tools {
        for (i, w) in workloads.iter().enumerate() {
            group.bench_with_input(BenchmarkId::new(*name, i), w, |b, circ| {
                b.iter(|| tool.route(circ, &graph))
            });
        }
    }
    group.finish();
}

/// Fig. 2 / Table II / Fig. 13 (Q3): slice-size ablation — the local
/// relaxation at several slice sizes vs NL-SATMAP.
fn q3_slice_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("q3_slice_sizes");
    group.sample_size(10);
    let graph = arch::devices::tokyo_minus();
    let circuit = circuit::generators::random_local(5, 12, 4, 0.1, 3);
    for slice in [2usize, 4, 8] {
        let router = SatMap::new(SatMapConfig::sliced(slice).with_budget(bench_budget()));
        group.bench_with_input(BenchmarkId::new("sliced", slice), &circuit, |b, circ| {
            b.iter(|| router.route(circ, &graph))
        });
    }
    let nl = SatMap::new(SatMapConfig::monolithic().with_budget(bench_budget()));
    group.bench_with_input(BenchmarkId::new("nl-satmap", 0), &circuit, |b, circ| {
        b.iter(|| nl.route(circ, &graph))
    });
    group.finish();
}

/// Table IV (Q3): cyclic relaxation on QAOA vs unrolled solving.
fn q3_qaoa_cyclic(c: &mut Criterion) {
    let mut group = c.benchmark_group("q3_qaoa_cyclic");
    group.sample_size(10);
    let graph = arch::devices::tokyo();
    let n = 6usize;
    let edges = circuit::qaoa::three_regular_graph(n, 1);
    let sub = circuit::qaoa::qaoa_subcircuit(n, &edges, 0.4, 0.3);
    let prefix = circuit::Circuit::new(n);
    let full = circuit::qaoa::qaoa_maxcut(n, 2, 1);

    let cyc = CyclicSatMap::new(SatMapConfig::default().with_budget(bench_budget()));
    group.bench_function("cyc-satmap", |b| {
        b.iter(|| cyc.route_repeated(&prefix, &sub, 2, &graph))
    });
    let sm = SatMap::new(SatMapConfig::default().with_budget(bench_budget()));
    group.bench_function("satmap-unrolled", |b| b.iter(|| sm.route(&full, &graph)));
    let tket = Tket::default();
    group.bench_function("tket", |b| b.iter(|| tket.route(&full, &graph)));
    group.finish();
}

/// Fig. 14 (Q4): the same workload across Tokyo− / Tokyo / Tokyo+.
fn q4_architectures(c: &mut Criterion) {
    let mut group = c.benchmark_group("q4_architectures");
    group.sample_size(10);
    let circuit = circuit::generators::random_local(6, 10, 5, 0.1, 4);
    for graph in [
        arch::devices::tokyo_minus(),
        arch::devices::tokyo(),
        arch::devices::tokyo_plus(),
    ] {
        let router = SatMap::new(SatMapConfig::default().with_budget(bench_budget()));
        group.bench_with_input(
            BenchmarkId::new("satmap", graph.name()),
            &circuit,
            |b, circ| b.iter(|| router.route(circ, &graph)),
        );
        let tket = Tket::default();
        group.bench_with_input(
            BenchmarkId::new("tket", graph.name()),
            &circuit,
            |b, circ| b.iter(|| tket.route(circ, &graph)),
        );
    }
    group.finish();
}

/// Figs. 15–16 (Q5): solve time as the instance grows (the scalability
/// axis behind the time-budget sweep).
fn q5_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("q5_scaling");
    group.sample_size(10);
    let graph = arch::devices::tokyo_minus();
    for gates in [4usize, 8, 16] {
        let circuit = circuit::generators::random_local(5, gates, 4, 0.0, 9);
        let router = SatMap::new(SatMapConfig::sliced(4).with_budget(bench_budget()));
        group.bench_with_input(BenchmarkId::new("satmap", gates), &circuit, |b, circ| {
            b.iter(|| router.route(circ, &graph))
        });
    }
    group.finish();
}

/// Q6: the weighted (fidelity) objective vs plain swap minimization.
fn q6_noise(c: &mut Criterion) {
    let mut group = c.benchmark_group("q6_noise");
    group.sample_size(10);
    let graph = arch::devices::tokyo();
    let noise = arch::NoiseModel::synthetic(&graph, 2022);
    let circuit = circuit::generators::random_local(4, 6, 3, 0.0, 5);
    let plain = SatMap::new(SatMapConfig::monolithic().with_budget(bench_budget()));
    group.bench_function("swap-count", |b| b.iter(|| plain.route(&circuit, &graph)));
    let weighted = SatMap::new(SatMapConfig {
        objective: Objective::Fidelity(noise.clone()),
        ..SatMapConfig::monolithic().with_budget(bench_budget())
    });
    group.bench_function("fidelity", |b| b.iter(|| weighted.route(&circuit, &graph)));
    group.finish();
}

/// Ablation: the `n` swaps-per-gap parameter (DESIGN.md design decision).
fn ablation_swaps_per_gap(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_swaps_per_gap");
    group.sample_size(10);
    let graph = arch::devices::tokyo_minus();
    let circuit = circuit::generators::random_local(5, 8, 4, 0.0, 6);
    for n in [1usize, 2] {
        let router = SatMap::new(SatMapConfig {
            swaps_per_gap: n,
            ..SatMapConfig::monolithic().with_budget(bench_budget())
        });
        group.bench_with_input(BenchmarkId::new("n", n), &circuit, |b, circ| {
            b.iter(|| router.route(circ, &graph))
        });
    }
    group.finish();
}

/// Portfolio solving: a single default CDCL worker vs a 4-worker
/// diversified race on the same planted-model 3-CNF. The planted model is
/// mostly-positive, the worst case for the default negative-first phase —
/// exactly the variance a diversified portfolio erases, so this group is
/// the `portfolio_speedup` source in `BENCH_satmap.json`.
fn portfolio_race(c: &mut Criterion) {
    let mut group = c.benchmark_group("portfolio");
    group.sample_size(10);
    let cnf = planted_cnf(400, 1600, 5);
    let load = |backend: &mut dyn ClauseSink| {
        for clause in &cnf {
            let lits: Vec<Lit> = clause.iter().map(|&d| Lit::from_dimacs(d)).collect();
            backend.emit(&lits);
        }
    };
    group.bench_function("single", |b| {
        b.iter(|| {
            let mut s = Solver::new();
            s.reserve_vars(400);
            load(&mut s);
            assert_eq!(
                s.solve_under_assumptions(&[], &ResourceBudget::unlimited()),
                SolveResult::Sat
            );
        })
    });
    group.bench_function("portfolio4", |b| {
        b.iter(|| {
            let mut p = PortfolioBackend::<Solver, 4>::default();
            p.reserve_vars(400);
            load(&mut p);
            assert_eq!(
                p.solve_under_assumptions(&[], &ResourceBudget::unlimited()),
                SolveResult::Sat
            );
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    q1_constraint_tools,
    q2_heuristics,
    q3_slice_sizes,
    q3_qaoa_cyclic,
    q4_architectures,
    q5_scaling,
    q6_noise,
    ablation_swaps_per_gap,
    portfolio_race
);

fn main() {
    benches();
    // Emit the machine-readable report next to the human-readable stdout
    // (satisfying CI's harness-error check: a failed write fails the run).
    let path = bench::write_bench_json().expect("write BENCH_satmap.json");
    println!("bench report written to {}", path.display());
}

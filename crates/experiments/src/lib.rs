//! Experiment harness for the SATMAP (MICRO 2022) reproduction.
//!
//! One runner per research question of the paper's Section VII; each prints
//! the rows/series of the corresponding tables and figures. Budgets scale
//! via `SATMAP_BUDGET_MS` (per-instance, default 2000) and the suite via
//! `SATMAP_SUITE_LIMIT` (default: all 160 benchmarks).
//!
//! | Runner | Paper artifact |
//! |---|---|
//! | [`questions::q1`] | Fig. 1, Table I, Figs. 10–11 |
//! | [`questions::q2`] | Fig. 12 |
//! | [`questions::q3_local`] | Fig. 2, Table II, Fig. 13 |
//! | [`questions::q3_cyclic`] | Table IV |
//! | [`questions::q3_breakdown`] | Table III |
//! | [`questions::q4`] | Fig. 14 |
//! | [`questions::q5`] | Figs. 15–16 |
//! | [`questions::q6`] | §Q6 (noise-aware) |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod questions;
pub mod runner;

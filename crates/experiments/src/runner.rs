//! Shared experiment infrastructure: budgets, tool invocation, verified
//! outcomes, multi-core suite sweeps, and small table-formatting helpers.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use arch::ConnectivityGraph;
use circuit::suite::Benchmark;
use circuit::{verify::verify, RouteError, Router};
use sat::SolverTelemetry;

/// Result of running one tool on one benchmark.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// Benchmark name.
    pub name: String,
    /// Two-qubit gate count (the paper's circuit-size measure).
    pub size: usize,
    /// Added CNOT gates (3 per SWAP) if solved.
    pub cost: Option<usize>,
    /// Wall-clock time of the attempt.
    pub seconds: f64,
    /// Solver effort spent by the attempt (zero for pure heuristics).
    pub telemetry: SolverTelemetry,
    /// Error, when unsolved.
    pub error: Option<RouteError>,
}

impl RunOutcome {
    /// True when the tool produced a verified solution.
    pub fn solved(&self) -> bool {
        self.cost.is_some()
    }
}

/// Per-instance time budget taken from `SATMAP_BUDGET_MS` (default 2000).
pub fn env_budget() -> Duration {
    let ms = std::env::var("SATMAP_BUDGET_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2000u64);
    Duration::from_millis(ms)
}

/// Worker-thread count for suite sweeps, taken from `SATMAP_JOBS`
/// (default 1; the `satmap-experiments --jobs N` flag sets it).
pub fn env_jobs() -> usize {
    std::env::var("SATMAP_JOBS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

/// Benchmark-count cap from `SATMAP_SUITE_LIMIT` (default: full suite).
/// When capped, the suite is subsampled uniformly so all size tiers stay
/// represented.
pub fn env_suite() -> Vec<Benchmark> {
    let full = circuit::suite::suite();
    let limit: usize = std::env::var("SATMAP_SUITE_LIMIT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(full.len());
    if limit >= full.len() {
        return full;
    }
    let stride = full.len() as f64 / limit as f64;
    (0..limit)
        .map(|i| full[(i as f64 * stride) as usize].clone())
        .collect()
}

/// Runs `router` on one benchmark, verifying any claimed solution with the
/// independent verifier. A solution that fails verification is treated as
/// unsolved (and flagged in the outcome's error).
pub fn run_tool(router: &dyn Router, bench: &Benchmark, graph: &ConnectivityGraph) -> RunOutcome {
    let start = Instant::now();
    let (result, telemetry) = router.route_with_telemetry(&bench.circuit, graph);
    let seconds = start.elapsed().as_secs_f64();
    match result {
        Ok(routed) => match verify(&bench.circuit, graph, &routed) {
            Ok(()) => RunOutcome {
                name: bench.name.clone(),
                size: bench.circuit.num_two_qubit_gates(),
                cost: Some(routed.added_gates()),
                seconds,
                telemetry,
                error: None,
            },
            Err(e) => RunOutcome {
                name: bench.name.clone(),
                size: bench.circuit.num_two_qubit_gates(),
                cost: None,
                seconds,
                telemetry,
                error: Some(RouteError::Unsatisfiable(format!(
                    "verification failed: {e}"
                ))),
            },
        },
        Err(e) => RunOutcome {
            name: bench.name.clone(),
            size: bench.circuit.num_two_qubit_gates(),
            cost: None,
            seconds,
            // Effort spent on failed attempts still counts toward the
            // solver-effort tables.
            telemetry,
            error: Some(e),
        },
    }
}

/// Runs `router` over the whole suite on `jobs` worker threads pulling
/// from a shared instance queue ([`std::thread::scope`]; `jobs = 1` runs
/// inline with no threads).
///
/// Results land at their benchmark's index, so the output order — and
/// therefore every table derived from it — is identical for any job count.
/// Each `run_tool` call arms the router's own per-instance budget as a
/// fresh child, so parallel workers neither share nor extend deadlines.
pub fn run_suite(
    router: &(dyn Router + Sync),
    suite: &[Benchmark],
    graph: &ConnectivityGraph,
    jobs: usize,
) -> Vec<RunOutcome> {
    let jobs = jobs.clamp(1, suite.len().max(1));
    if jobs == 1 {
        return suite.iter().map(|b| run_tool(router, b, graph)).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<RunOutcome>>> = suite.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(bench) = suite.get(i) else { break };
                let outcome = run_tool(router, bench, graph);
                *slots[i].lock().expect("result slot") = Some(outcome);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot")
                .expect("every queue index was claimed by exactly one worker")
        })
        .collect()
}

/// Sums the solver effort across a set of outcomes.
pub fn total_telemetry(outcomes: &[RunOutcome]) -> SolverTelemetry {
    let mut total = SolverTelemetry::default();
    for o in outcomes {
        total.absorb(&o.telemetry);
    }
    total
}

/// Summary over a set of outcomes: `(solved, largest circuit solved)`.
pub fn solved_summary(outcomes: &[RunOutcome]) -> (usize, usize) {
    let solved = outcomes.iter().filter(|o| o.solved()).count();
    let largest = outcomes
        .iter()
        .filter(|o| o.solved())
        .map(|o| o.size)
        .max()
        .unwrap_or(0);
    (solved, largest)
}

/// Geometric-mean helper ignoring non-finite entries.
pub fn mean(values: &[f64]) -> f64 {
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if finite.is_empty() {
        return f64::NAN;
    }
    finite.iter().sum::<f64>() / finite.len() as f64
}

/// Formats a row of fixed-width cells.
pub fn row(cells: &[String]) -> String {
    cells
        .iter()
        .map(|c| format!("{c:>14}"))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Serializes tests that mutate the process environment.
#[cfg(test)]
pub(crate) static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;
    use heuristics::Tket;

    #[test]
    fn run_tool_verifies_and_reports() {
        let bench = Benchmark {
            name: "tiny".into(),
            circuit: circuit::generators::qft(4),
        };
        let g = arch::devices::tokyo();
        let out = run_tool(&Tket::default(), &bench, &g);
        assert!(out.solved());
        assert_eq!(out.size, 12);
        assert!(
            out.cost.expect("cost").is_multiple_of(3),
            "cost counts CNOTs per swap"
        );
        // A heuristic spends no solver effort.
        assert_eq!(out.telemetry.sat_calls, 0);
    }

    #[test]
    fn run_tool_reports_solver_effort_for_sat_routers() {
        use satmap::{SatMap, SatMapConfig};
        let bench = Benchmark {
            name: "tiny".into(),
            circuit: circuit::generators::qft(3),
        };
        let g = arch::devices::tokyo();
        let out = run_tool(&SatMap::new(SatMapConfig::monolithic()), &bench, &g);
        assert!(out.solved());
        assert!(out.telemetry.sat_calls > 0, "{}", out.telemetry);
        let total = total_telemetry(std::slice::from_ref(&out));
        assert_eq!(total.sat_calls, out.telemetry.sat_calls);
    }

    #[test]
    fn summary_counts() {
        let outcomes = vec![
            RunOutcome {
                name: "a".into(),
                size: 10,
                cost: Some(3),
                seconds: 0.1,
                telemetry: SolverTelemetry::default(),
                error: None,
            },
            RunOutcome {
                name: "b".into(),
                size: 99,
                cost: None,
                seconds: 0.1,
                telemetry: SolverTelemetry::default(),
                error: Some(RouteError::Timeout),
            },
        ];
        assert_eq!(solved_summary(&outcomes), (1, 10));
    }

    #[test]
    fn mean_ignores_nan() {
        assert!((mean(&[1.0, 3.0, f64::NAN]) - 2.0).abs() < 1e-9);
        assert!(mean(&[]).is_nan());
    }

    #[test]
    fn run_suite_rows_are_identical_for_any_job_count() {
        use satmap::{SatMap, SatMapConfig};
        let suite: Vec<Benchmark> = (3..=6)
            .map(|n| Benchmark {
                name: format!("qft{n}"),
                circuit: circuit::generators::qft(n),
            })
            .collect();
        let g = arch::devices::tokyo();
        // Unlimited budget keeps the router deterministic (always optimal),
        // so everything except wall-clock must match byte-for-byte.
        let router = SatMap::new(SatMapConfig::sliced(4));
        let serial = run_suite(&router, &suite, &g, 1);
        let parallel = run_suite(&router, &suite, &g, 4);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.name, p.name, "row order must not depend on --jobs");
            assert_eq!(s.size, p.size);
            assert_eq!(s.cost, p.cost, "{}: costs must match", s.name);
            assert_eq!(s.error, p.error);
        }
    }

    #[test]
    fn env_jobs_defaults_and_parses() {
        let _guard = super::ENV_LOCK.lock().expect("env lock");
        std::env::remove_var("SATMAP_JOBS");
        assert_eq!(env_jobs(), 1);
        std::env::set_var("SATMAP_JOBS", "4");
        assert_eq!(env_jobs(), 4);
        std::env::set_var("SATMAP_JOBS", "0");
        assert_eq!(env_jobs(), 1, "zero jobs falls back to serial");
        std::env::remove_var("SATMAP_JOBS");
    }

    #[test]
    fn env_suite_subsamples() {
        let _guard = super::ENV_LOCK.lock().expect("env lock");
        std::env::set_var("SATMAP_SUITE_LIMIT", "16");
        let s = env_suite();
        assert_eq!(s.len(), 16);
        std::env::remove_var("SATMAP_SUITE_LIMIT");
    }
}

//! Shared experiment infrastructure: request specs, tool invocation,
//! verified outcomes, multi-core suite sweeps, JSON row emission, and
//! small table-formatting helpers.
//!
//! Every route call goes through a [`circuit::RouteRequest`] built from
//! one [`RouteSpec`] per sweep, so the per-instance budget, objective, and
//! portfolio width are properties of the *run*, not of the router — the
//! routers themselves come out of [`routers::RouterRegistry`] as
//! `Box<dyn Router>`.

use std::io::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use arch::ConnectivityGraph;
use circuit::request::escape_json;
use circuit::suite::Benchmark;
use circuit::{verify::verify, Parallelism, RouteError, RouteRequest, RouteSpec, Router};
use sat::SolverTelemetry;

/// Result of running one tool on one benchmark.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// Benchmark name.
    pub name: String,
    /// Two-qubit gate count (the paper's circuit-size measure).
    pub size: usize,
    /// Name of the router that served the request.
    pub router: String,
    /// Added CNOT gates (3 per SWAP) if solved.
    pub cost: Option<usize>,
    /// Wall-clock time of the attempt.
    pub seconds: f64,
    /// Solver effort spent by the attempt (zero for pure heuristics).
    pub telemetry: SolverTelemetry,
    /// Error, when unsolved.
    pub error: Option<RouteError>,
    /// The row in the shared JSON schema (see [`circuit::RouteOutcome::to_json`]),
    /// extended with `bench` and `size` fields.
    pub json: String,
}

impl RunOutcome {
    /// True when the tool produced a verified solution.
    pub fn solved(&self) -> bool {
        self.cost.is_some()
    }
}

/// Per-instance time budget taken from `SATMAP_BUDGET_MS` (default 2000).
pub fn env_budget() -> Duration {
    let ms = std::env::var("SATMAP_BUDGET_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2000u64);
    Duration::from_millis(ms)
}

/// Worker-thread count for suite sweeps, taken from `SATMAP_JOBS`
/// (default 1; the `satmap-experiments --jobs N` flag sets it).
pub fn env_jobs() -> usize {
    std::env::var("SATMAP_JOBS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

/// The sweep spec the experiment runners share: the `SATMAP_BUDGET_MS`
/// per-instance budget and automatic portfolio sizing (resolved against
/// the job count inside [`run_suite`]).
pub fn env_spec() -> RouteSpec {
    RouteSpec {
        budget: env_budget().into(),
        parallelism: Parallelism::Auto,
        ..RouteSpec::default()
    }
}

/// Benchmark-count cap from `SATMAP_SUITE_LIMIT` (default: full suite).
/// When capped, the suite is subsampled uniformly so all size tiers stay
/// represented.
pub fn env_suite() -> Vec<Benchmark> {
    let full = circuit::suite::suite();
    let limit: usize = std::env::var("SATMAP_SUITE_LIMIT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(full.len());
    if limit >= full.len() {
        return full;
    }
    let stride = full.len() as f64 / limit as f64;
    (0..limit)
        .map(|i| full[(i as f64 * stride) as usize].clone())
        .collect()
}

/// Runs `router` on one benchmark under `spec`, verifying any claimed
/// solution with the independent verifier. A solution that fails
/// verification is treated as unsolved (and flagged in the outcome's
/// error).
pub fn run_tool(
    router: &dyn Router,
    bench: &Benchmark,
    graph: &ConnectivityGraph,
    spec: &RouteSpec,
) -> RunOutcome {
    let request = RouteRequest::with_spec(&bench.circuit, graph, spec.clone());
    let outcome = router.route_request(&request);
    let size = bench.circuit.num_two_qubit_gates();
    let (cost, error) = match outcome.result() {
        Ok(routed) => match verify(&bench.circuit, graph, routed) {
            Ok(()) => (Some(routed.added_gates()), None),
            Err(e) => (
                None,
                Some(RouteError::Unsatisfiable(format!(
                    "verification failed: {e}"
                ))),
            ),
        },
        // Effort spent on failed attempts still counts toward the
        // solver-effort tables.
        Err(e) => (None, Some(e.clone())),
    };
    // Render the JSON row from the *verified* status, so a solution the
    // verifier rejected is not reported as solved. Diagnostics, telemetry,
    // and timing carry over unchanged; only the rare rejected path pays
    // for an outcome clone.
    let row = match (&error, outcome.solved()) {
        (Some(e), true) => outcome.clone().with_result(Err(e.clone())).to_json(),
        _ => outcome.to_json(),
    };
    let json = format!(
        "{{\"bench\":\"{}\",\"size\":{},{}",
        escape_json(&bench.name),
        size,
        &row[1..]
    );
    RunOutcome {
        name: bench.name.clone(),
        size,
        router: outcome.router().to_string(),
        cost,
        seconds: outcome.wall_time().as_secs_f64(),
        telemetry: *outcome.telemetry(),
        error,
        json,
    }
}

/// Runs `router` over the whole suite on `jobs` worker threads pulling
/// from a shared instance queue ([`std::thread::scope`]; `jobs = 1` runs
/// inline with no threads).
///
/// Results land at their benchmark's index, so the output order — and
/// therefore every table derived from it — is identical for any job count.
/// Each [`run_tool`] call arms its own per-instance budget as a fresh
/// request, so parallel workers neither share nor extend deadlines. A
/// [`Parallelism::Auto`] spec resolves once against `jobs`, shrinking the
/// per-request SAT portfolio when the sweep already saturates the cores.
///
/// When `SATMAP_ROWS_JSON` names a file, one JSON object per row is
/// appended to it (NDJSON) in suite order — the same row schema
/// `BENCH_satmap.json` embeds (see [`circuit::RouteOutcome::to_json`]),
/// each stamped with its suite index as `request_id`.
pub fn run_suite(
    router: &(dyn Router + Sync),
    suite: &[Benchmark],
    graph: &ConnectivityGraph,
    spec: &RouteSpec,
    jobs: usize,
) -> Vec<RunOutcome> {
    let jobs = jobs.clamp(1, suite.len().max(1));
    let mut spec = spec.clone();
    if spec.parallelism == Parallelism::Auto {
        spec.parallelism = Parallelism::Width(Parallelism::auto_for_jobs(jobs));
    }
    let outcomes: Vec<RunOutcome> = if jobs == 1 {
        suite
            .iter()
            .enumerate()
            .map(|(i, b)| run_tool(router, b, graph, &spec_for_row(&spec, i)))
            .collect()
    } else {
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<RunOutcome>>> =
            suite.iter().map(|_| Mutex::new(None)).collect();
        let spec = &spec;
        std::thread::scope(|scope| {
            for _ in 0..jobs {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(bench) = suite.get(i) else { break };
                    let outcome = run_tool(router, bench, graph, &spec_for_row(spec, i));
                    *slots[i].lock().expect("result slot") = Some(outcome);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot")
                    .expect("every queue index was claimed by exactly one worker")
            })
            .collect()
    };
    if let Err(e) = append_json_rows(&outcomes) {
        eprintln!("warning: could not write SATMAP_ROWS_JSON rows: {e}");
    }
    outcomes
}

/// The spec for suite row `i`: stamped with the row's index as its
/// request id, so every emitted JSON row is traceable back to its
/// benchmark position. The id is excluded from the request fingerprint,
/// so stamping never splits warm-start or cache keys.
fn spec_for_row(spec: &RouteSpec, i: usize) -> RouteSpec {
    RouteSpec {
        request_id: Some(i as u64),
        ..spec.clone()
    }
}

/// Appends each outcome's JSON row to the `SATMAP_ROWS_JSON` file (no-op
/// when the variable is unset).
fn append_json_rows(outcomes: &[RunOutcome]) -> std::io::Result<()> {
    let Some(path) = std::env::var_os("SATMAP_ROWS_JSON") else {
        return Ok(());
    };
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    for o in outcomes {
        writeln!(file, "{}", o.json)?;
    }
    Ok(())
}

/// Sums the solver effort across a set of outcomes.
pub fn total_telemetry(outcomes: &[RunOutcome]) -> SolverTelemetry {
    let mut total = SolverTelemetry::default();
    for o in outcomes {
        total.absorb(&o.telemetry);
    }
    total
}

/// Summary over a set of outcomes: `(solved, largest circuit solved)`.
pub fn solved_summary(outcomes: &[RunOutcome]) -> (usize, usize) {
    let solved = outcomes.iter().filter(|o| o.solved()).count();
    let largest = outcomes
        .iter()
        .filter(|o| o.solved())
        .map(|o| o.size)
        .max()
        .unwrap_or(0);
    (solved, largest)
}

/// Geometric-mean helper ignoring non-finite entries.
pub fn mean(values: &[f64]) -> f64 {
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if finite.is_empty() {
        return f64::NAN;
    }
    finite.iter().sum::<f64>() / finite.len() as f64
}

/// Formats a row of fixed-width cells.
pub fn row(cells: &[String]) -> String {
    cells
        .iter()
        .map(|c| format!("{c:>14}"))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Serializes tests that mutate the process environment.
#[cfg(test)]
pub(crate) static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;
    use routers::RouterRegistry;

    fn registry() -> RouterRegistry {
        RouterRegistry::standard()
    }

    #[test]
    fn run_tool_verifies_and_reports() {
        let bench = Benchmark {
            name: "tiny".into(),
            circuit: circuit::generators::qft(4),
        };
        let g = arch::devices::tokyo();
        let tket = registry().create("tket").expect("registered");
        let out = run_tool(tket.as_ref(), &bench, &g, &RouteSpec::default());
        assert!(out.solved());
        assert_eq!(out.size, 12);
        assert_eq!(out.router, "tket");
        assert!(
            out.cost.expect("cost").is_multiple_of(3),
            "cost counts CNOTs per swap"
        );
        // A heuristic spends no solver effort.
        assert_eq!(out.telemetry.sat_calls, 0);
        assert!(out.json.starts_with("{\"bench\":\"tiny\",\"size\":12,"));
        assert!(out.json.contains("\"router\":\"tket\""));
    }

    #[test]
    fn run_tool_reports_solver_effort_for_sat_routers() {
        let bench = Benchmark {
            name: "tiny".into(),
            circuit: circuit::generators::qft(3),
        };
        let g = arch::devices::tokyo();
        let satmap = registry().create("nl-satmap").expect("registered");
        let out = run_tool(satmap.as_ref(), &bench, &g, &RouteSpec::default());
        assert!(out.solved());
        assert!(out.telemetry.sat_calls > 0, "{}", out.telemetry);
        let total = total_telemetry(std::slice::from_ref(&out));
        assert_eq!(total.sat_calls, out.telemetry.sat_calls);
    }

    #[test]
    fn summary_counts() {
        let stub = |name: &str, size, cost, error| RunOutcome {
            name: name.into(),
            size,
            router: "stub".into(),
            cost,
            seconds: 0.1,
            telemetry: SolverTelemetry::default(),
            error,
            json: String::new(),
        };
        let outcomes = vec![
            stub("a", 10, Some(3), None),
            stub("b", 99, None, Some(RouteError::Timeout)),
        ];
        assert_eq!(solved_summary(&outcomes), (1, 10));
    }

    #[test]
    fn mean_ignores_nan() {
        assert!((mean(&[1.0, 3.0, f64::NAN]) - 2.0).abs() < 1e-9);
        assert!(mean(&[]).is_nan());
    }

    #[test]
    fn run_suite_rows_are_identical_for_any_job_count() {
        // run_suite reads SATMAP_ROWS_JSON; hold the env lock so the
        // JSON-row test cannot interleave its env mutation with this run.
        let _guard = super::ENV_LOCK.lock().expect("env lock");
        let suite: Vec<Benchmark> = (3..=6)
            .map(|n| Benchmark {
                name: format!("qft{n}"),
                circuit: circuit::generators::qft(n),
            })
            .collect();
        let g = arch::devices::tokyo();
        // Unlimited budget keeps the router deterministic (always optimal),
        // so everything except wall-clock must match byte-for-byte.
        let router = registry().create("satmap").expect("registered");
        let spec = RouteSpec {
            slicing: circuit::Slicing::Sliced(4),
            ..RouteSpec::default()
        };
        let serial = run_suite(&*router, &suite, &g, &spec, 1);
        let parallel = run_suite(&*router, &suite, &g, &spec, 4);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.name, p.name, "row order must not depend on --jobs");
            assert_eq!(s.size, p.size);
            assert_eq!(s.cost, p.cost, "{}: costs must match", s.name);
            assert_eq!(s.error, p.error);
        }
    }

    #[test]
    fn run_suite_appends_json_rows() {
        let _guard = super::ENV_LOCK.lock().expect("env lock");
        let path = std::env::temp_dir().join(format!("satmap_rows_{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        std::env::set_var("SATMAP_ROWS_JSON", &path);
        let suite = vec![Benchmark {
            name: "qft3".into(),
            circuit: circuit::generators::qft(3),
        }];
        let g = arch::devices::tokyo();
        let tket = registry().create("tket").expect("registered");
        run_suite(&*tket, &suite, &g, &RouteSpec::default(), 1);
        run_suite(&*tket, &suite, &g, &RouteSpec::default(), 1);
        std::env::remove_var("SATMAP_ROWS_JSON");
        let text = std::fs::read_to_string(&path).expect("rows written");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "one object per row, appended across runs");
        for line in lines {
            assert!(line.starts_with("{\"bench\":\"qft3\""));
            assert!(line.ends_with("}}"));
            assert_eq!(line.matches('{').count(), line.matches('}').count());
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn env_jobs_defaults_and_parses() {
        let _guard = super::ENV_LOCK.lock().expect("env lock");
        std::env::remove_var("SATMAP_JOBS");
        assert_eq!(env_jobs(), 1);
        std::env::set_var("SATMAP_JOBS", "4");
        assert_eq!(env_jobs(), 4);
        std::env::set_var("SATMAP_JOBS", "0");
        assert_eq!(env_jobs(), 1, "zero jobs falls back to serial");
        std::env::remove_var("SATMAP_JOBS");
    }

    #[test]
    fn env_suite_subsamples() {
        let _guard = super::ENV_LOCK.lock().expect("env lock");
        std::env::set_var("SATMAP_SUITE_LIMIT", "16");
        let s = env_suite();
        assert_eq!(s.len(), 16);
        std::env::remove_var("SATMAP_SUITE_LIMIT");
    }
}

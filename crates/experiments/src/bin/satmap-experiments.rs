//! Command-line entry point regenerating the paper's tables and figures.
//!
//! Usage: `satmap-experiments [--jobs N] <q1|q1-runtimes|q2|q3-local|q3-cyclic|q3-breakdown|q4|q5-time|q5-size|q6|all>`
//!
//! `--jobs N` runs each suite sweep on N worker threads pulling from a
//! shared instance queue. Table rows keep their order for any N (results
//! land at their benchmark's index), so outputs are comparable across job
//! counts; only the wall-clock columns reflect the parallelism. Note that
//! per-instance budgets are wall-clock deadlines: oversubscribing the
//! machine (N well above the core count) leaves each instance less CPU
//! before its deadline, which can turn tight-budget runs into timeouts a
//! serial sweep would not hit. With non-binding budgets the solved set and
//! costs are identical for any N.
//!
//! Environment: `SATMAP_BUDGET_MS` (per-instance budget, default 2000),
//! `SATMAP_SUITE_LIMIT` (subsample the 160-benchmark suite),
//! `SATMAP_JOBS` (same as `--jobs`; the flag wins), `SATMAP_ROWS_JSON`
//! (append one JSON object per (benchmark, router) row — the same outcome
//! schema `BENCH_satmap.json` embeds under `routes`).

use experiments::questions;

fn main() {
    let mut args = std::env::args().skip(1);
    let mut command: Option<String> = None;
    while let Some(arg) = args.next() {
        if arg == "--jobs" || arg == "-j" {
            let Some(n) = args
                .next()
                .filter(|n| n.parse::<usize>().is_ok_and(|n| n >= 1))
            else {
                eprintln!("--jobs requires a positive integer");
                std::process::exit(2);
            };
            // `env_jobs()` is how the question runners read the setting.
            std::env::set_var("SATMAP_JOBS", n);
        } else if let Some(n) = arg.strip_prefix("--jobs=") {
            if n.parse::<usize>().is_ok_and(|n| n >= 1) {
                std::env::set_var("SATMAP_JOBS", n);
            } else {
                eprintln!("--jobs requires a positive integer");
                std::process::exit(2);
            }
        } else {
            command = Some(arg);
        }
    }
    let command = command.unwrap_or_else(|| "all".into());
    let run = |cmd: &str| match cmd {
        "q1" => print!("{}", questions::q1(false)),
        "q1-runtimes" => print!("{}", questions::q1(true)),
        "q2" => print!("{}", questions::q2()),
        "q3-local" => print!("{}", questions::q3_local()),
        "q3-cyclic" => print!("{}", questions::q3_cyclic()),
        "q3-breakdown" => print!("{}", questions::q3_breakdown()),
        "q4" => print!("{}", questions::q4()),
        "q5-time" => print!("{}", questions::q5(true)),
        "q5-size" => print!("{}", questions::q5(false)),
        "q6" => print!("{}", questions::q6()),
        other => {
            eprintln!("unknown experiment '{other}'");
            std::process::exit(2);
        }
    };
    if command == "all" {
        for cmd in [
            "q1",
            "q2",
            "q3-local",
            "q3-cyclic",
            "q3-breakdown",
            "q4",
            "q5-time",
            "q5-size",
            "q6",
        ] {
            println!("==================== {cmd} ====================");
            run(cmd);
            println!();
        }
    } else {
        run(&command);
    }
}

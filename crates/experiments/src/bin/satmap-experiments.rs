//! Command-line entry point regenerating the paper's tables and figures.
//!
//! Usage: `satmap-experiments <q1|q1-runtimes|q2|q3-local|q3-cyclic|q3-breakdown|q4|q5-time|q5-size|q6|all>`
//!
//! Environment: `SATMAP_BUDGET_MS` (per-instance budget, default 2000),
//! `SATMAP_SUITE_LIMIT` (subsample the 160-benchmark suite).

use experiments::questions;

fn main() {
    let command = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    let run = |cmd: &str| match cmd {
        "q1" => print!("{}", questions::q1(false)),
        "q1-runtimes" => print!("{}", questions::q1(true)),
        "q2" => print!("{}", questions::q2()),
        "q3-local" => print!("{}", questions::q3_local()),
        "q3-cyclic" => print!("{}", questions::q3_cyclic()),
        "q3-breakdown" => print!("{}", questions::q3_breakdown()),
        "q4" => print!("{}", questions::q4()),
        "q5-time" => print!("{}", questions::q5(true)),
        "q5-size" => print!("{}", questions::q5(false)),
        "q6" => print!("{}", questions::q6()),
        other => {
            eprintln!("unknown experiment '{other}'");
            std::process::exit(2);
        }
    };
    if command == "all" {
        for cmd in [
            "q1",
            "q2",
            "q3-local",
            "q3-cyclic",
            "q3-breakdown",
            "q4",
            "q5-time",
            "q5-size",
            "q6",
        ] {
            println!("==================== {cmd} ====================");
            run(cmd);
            println!();
        }
    } else {
        run(&command);
    }
}

//! Per-research-question experiment runners (Q1–Q6), each regenerating the
//! rows/series of the corresponding paper tables and figures.
//!
//! Every router is constructed by name through
//! [`routers::RouterRegistry`] and dispatched as `Box<dyn Router>`; all
//! per-run knobs (budget, objective, slicing, portfolio width) travel in
//! the [`RouteSpec`] each sweep passes to [`run_suite`].

use arch::{devices, NoiseModel};
use circuit::suite::Benchmark;
use circuit::{Circuit, Objective, RepeatedStructure, RouteRequest, RouteSpec, Slicing};
use routers::{BoxedRouter, RouterRegistry};

use crate::runner::{
    env_jobs, env_spec, env_suite, mean, row, run_suite, run_tool, solved_summary, total_telemetry,
    RunOutcome,
};

fn create(registry: &RouterRegistry, name: &str) -> BoxedRouter {
    registry
        .create(name)
        .unwrap_or_else(|e| panic!("registry must know '{name}': {e}"))
}

/// **Q1 / Fig. 1 / Table I / Figs. 10–11** — constraint-based tools:
/// benchmarks solved, largest circuit solved, and per-benchmark runtimes.
pub fn q1(runtimes: bool) -> String {
    let spec = env_spec();
    let suite = env_suite();
    let graph = devices::tokyo();
    let registry = RouterRegistry::standard();
    let mut out = String::new();
    out.push_str(&format!(
        "Q1: constraint-based comparison (budget {:?}/instance, {} benchmarks)\n",
        spec.budget.remaining_time().unwrap_or_default(),
        suite.len()
    ));

    let tools: Vec<(&str, BoxedRouter)> = vec![
        ("SATMAP", create(&registry, "satmap")),
        ("TB-OLSQ", create(&registry, "olsq-tb")),
        ("EX-MQT", create(&registry, "olsq")),
    ];
    let jobs = env_jobs();
    let mut all: Vec<(&str, Vec<RunOutcome>)> = Vec::new();
    for (name, tool) in &tools {
        all.push((name, run_suite(&**tool, &suite, &graph, &spec, jobs)));
    }

    out.push_str("\nTable I: # solved and largest circuit solved (two-qubit gates)\n");
    out.push_str(&row(&["tool".into(), "#solved".into(), "largest".into()]));
    out.push('\n');
    for (name, outcomes) in &all {
        let (solved, largest) = solved_summary(outcomes);
        out.push_str(&row(&[
            name.to_string(),
            format!("{solved}/{}", outcomes.len()),
            largest.to_string(),
        ]));
        out.push('\n');
    }

    // Solver effort behind Table I: SAT calls, conflicts, and where the
    // time went (encoding vs. solving) — the telemetry each router
    // aggregates from its MaxSAT and SAT layers.
    out.push_str("\nSolver effort (aggregated over the suite):\n");
    out.push_str(&row(&[
        "tool".into(),
        "SAT calls".into(),
        "conflicts".into(),
        "restarts".into(),
        "reductions".into(),
        "exported".into(),
        "imported".into(),
        "useful".into(),
        "xcall".into(),
        "compactions".into(),
        "encode(s)".into(),
        "solve(s)".into(),
        "slices".into(),
        "backtracks".into(),
    ]));
    out.push('\n');
    for (name, outcomes) in &all {
        let t = total_telemetry(outcomes);
        out.push_str(&row(&[
            name.to_string(),
            t.sat_calls.to_string(),
            t.conflicts.to_string(),
            t.restarts.to_string(),
            t.db_reductions.to_string(),
            t.clauses_exported.to_string(),
            t.clauses_imported.to_string(),
            t.useful_imports.to_string(),
            t.cross_call_imports.to_string(),
            t.compactions.to_string(),
            format!("{:.2}", t.encode_time.as_secs_f64()),
            format!("{:.2}", t.solve_time.as_secs_f64()),
            t.slices.to_string(),
            t.backtracks.to_string(),
        ]));
        out.push('\n');
    }

    // Mean speedup on commonly solved benchmarks (the paper's 20x/400x).
    let satmap_outcomes = &all[0].1;
    for (name, outcomes) in &all[1..] {
        let ratios: Vec<f64> = outcomes
            .iter()
            .zip(satmap_outcomes)
            .filter(|(o, s)| o.solved() && s.solved())
            .map(|(o, s)| o.seconds / s.seconds.max(1e-6))
            .collect();
        if !ratios.is_empty() {
            out.push_str(&format!(
                "mean runtime ratio {name}/SATMAP on co-solved: {:.1}x ({} benchmarks)\n",
                mean(&ratios),
                ratios.len()
            ));
        }
    }

    if runtimes {
        // Fig. 10/11: per-benchmark runtimes on sets the weaker tools solved.
        for (weak, label) in [(2usize, "EX-MQT (Fig. 10)"), (1, "TB-OLSQ (Fig. 11)")] {
            out.push_str(&format!("\nRuntimes on benchmarks solved by {label}:\n"));
            out.push_str(&row(&[
                "circuit".into(),
                "SATMAP(s)".into(),
                "TB-OLSQ(s)".into(),
                "EX-MQT(s)".into(),
            ]));
            out.push('\n');
            for (i, o) in all[weak].1.iter().enumerate() {
                if o.solved() {
                    out.push_str(&row(&[
                        o.name.clone(),
                        format!("{:.3}", all[0].1[i].seconds),
                        format!("{:.3}", all[1].1[i].seconds),
                        format!("{:.3}", all[2].1[i].seconds),
                    ]));
                    out.push('\n');
                }
            }
        }
    }
    out
}

fn cost_ratio_block(
    label: &str,
    heuristic: &[RunOutcome],
    satmap: &[RunOutcome],
) -> (String, Vec<f64>) {
    let mut ratios = Vec::new();
    let mut infinite = 0usize;
    for (h, s) in heuristic.iter().zip(satmap) {
        if let (Some(hc), Some(sc)) = (h.cost, s.cost) {
            if sc == 0 && hc > 0 {
                infinite += 1; // the orange points atop Fig. 12
            } else if sc == 0 && hc == 0 {
                ratios.push(1.0);
            } else {
                ratios.push(hc as f64 / sc as f64);
            }
        }
    }
    let text = format!(
        "{label}: mean cost ratio {:.2}x over {} benchmarks ({} with SATMAP=0 & heuristic>0)\n",
        mean(&ratios),
        ratios.len(),
        infinite
    );
    (text, ratios)
}

/// **Q2 / Fig. 12** — cost ratio of each heuristic vs SATMAP on the solved
/// subset, plus the fraction of zero-added-gate benchmarks.
pub fn q2() -> String {
    let spec = env_spec();
    let suite = env_suite();
    let graph = devices::tokyo();
    let registry = RouterRegistry::standard();
    let satmap = create(&registry, "satmap");
    let satmap_out = run_suite(&*satmap, &suite, &graph, &spec, env_jobs());
    let solved: Vec<Benchmark> = suite
        .iter()
        .zip(&satmap_out)
        .filter(|(_, o)| o.solved())
        .map(|(b, _)| b.clone())
        .collect();
    let satmap_solved: Vec<RunOutcome> =
        satmap_out.iter().filter(|o| o.solved()).cloned().collect();

    let mut out = format!(
        "Q2: heuristic comparison on {} SATMAP-solved benchmarks (of {})\n",
        solved.len(),
        suite.len()
    );
    let zero = satmap_solved.iter().filter(|o| o.cost == Some(0)).count();
    out.push_str(&format!(
        "SATMAP adds zero gates on {zero}/{} ({:.0}%)\n",
        satmap_solved.len(),
        100.0 * zero as f64 / satmap_solved.len().max(1) as f64
    ));

    let heuristics: Vec<(&str, BoxedRouter)> = vec![
        ("MQTH", create(&registry, "astar")),
        ("SABRE", create(&registry, "sabre")),
        ("TKET", create(&registry, "tket")),
    ];
    for (name, h) in &heuristics {
        let h_out = run_suite(&**h, &solved, &graph, &spec, env_jobs());
        let h_zero = h_out.iter().filter(|o| o.cost == Some(0)).count();
        let (text, _) = cost_ratio_block(name, &h_out, &satmap_solved);
        out.push_str(&text);
        out.push_str(&format!(
            "{name}: zero-added on {h_zero}/{} ({:.0}%)\n",
            h_out.len(),
            100.0 * h_zero as f64 / h_out.len().max(1) as f64
        ));
    }
    out
}

/// **Q3 local / Fig. 2 / Table II / Fig. 13** — slice-size sweep vs
/// NL-SATMAP, driven entirely through per-request [`Slicing`] overrides on
/// the same registry router.
pub fn q3_local() -> String {
    let spec = env_spec();
    let suite = env_suite();
    let graph = devices::tokyo();
    let registry = RouterRegistry::standard();
    let mut out = format!(
        "Q3 (local relaxation): slice sizes vs NL-SATMAP, budget {:?}\n",
        spec.budget.remaining_time().unwrap_or_default()
    );
    out.push_str(&row(&[
        "config".into(),
        "#solved".into(),
        "largest".into(),
        "ratio-vs-NL".into(),
    ]));
    out.push('\n');

    let satmap = create(&registry, "satmap");
    let nl = create(&registry, "nl-satmap");
    let nl_out = run_suite(&*nl, &suite, &graph, &spec, env_jobs());
    let (nl_solved, nl_largest) = solved_summary(&nl_out);

    for slice in [10usize, 25, 50, 100] {
        let sliced_spec = RouteSpec {
            slicing: Slicing::Sliced(slice),
            ..spec.clone()
        };
        let outcomes = run_suite(&*satmap, &suite, &graph, &sliced_spec, env_jobs());
        let (solved, largest) = solved_summary(&outcomes);
        // Fig. 13: cost ratio sliced/NL on co-solved benchmarks.
        let ratios: Vec<f64> = outcomes
            .iter()
            .zip(&nl_out)
            .filter_map(|(s, n)| match (s.cost, n.cost) {
                (Some(sc), Some(nc)) if nc > 0 => Some(sc as f64 / nc as f64),
                (Some(0), Some(0)) => Some(1.0),
                _ => None,
            })
            .collect();
        out.push_str(&row(&[
            format!("slice={slice}"),
            format!("{solved}/{}", outcomes.len()),
            largest.to_string(),
            format!("{:.2}", mean(&ratios)),
        ]));
        out.push('\n');
    }
    out.push_str(&row(&[
        "NL-SATMAP".into(),
        format!("{nl_solved}/{}", nl_out.len()),
        nl_largest.to_string(),
        "1.00".into(),
    ]));
    out.push('\n');
    out
}

/// Assembles the QAOA benchmark `H-layer ; C × cycles` together with its
/// [`RepeatedStructure`] declaration.
fn qaoa_repeated(n: usize, cycles: usize, seed: u64) -> (Circuit, RepeatedStructure) {
    let edges = circuit::qaoa::three_regular_graph(n, seed);
    let sub = circuit::qaoa::qaoa_subcircuit(n, &edges, 0.4, 0.3);
    let mut full = Circuit::named(&format!("qaoa_{n}q_{cycles}c"), n);
    for q in 0..n {
        full.h(q);
    }
    let prefix_len = full.len();
    for _ in 0..cycles {
        full.extend_from(&sub);
    }
    (full, RepeatedStructure { prefix_len, cycles })
}

/// **Q3 cyclic / Table IV** — QAOA circuits: CYC-SATMAP vs SATMAP vs TKET.
pub fn q3_cyclic() -> String {
    let spec = env_spec();
    let graph = devices::tokyo();
    let registry = RouterRegistry::standard();
    let cyc = create(&registry, "cyc-satmap");
    let satmap = create(&registry, "satmap");
    let tket = create(&registry, "tket");
    let mut out = format!(
        "Q3 (cyclic relaxation): QAOA MaxCut, budget {:?}\n",
        spec.budget.remaining_time().unwrap_or_default()
    );
    out.push_str(&row(&[
        "qubits".into(),
        "cycles".into(),
        "CYC cost".into(),
        "CYC t(s)".into(),
        "SATMAP cost".into(),
        "SM t(s)".into(),
        "TKET cost".into(),
        "TKET t(s)".into(),
    ]));
    out.push('\n');
    for &n in &[6usize, 8, 10, 12, 16] {
        for &cycles in &[2usize, 4] {
            let (full, repetition) = qaoa_repeated(n, cycles, n as u64);
            let bench = Benchmark {
                name: full.name().to_string(),
                circuit: full.clone(),
            };

            // CYC-SATMAP sees the repeated structure declared on the
            // request; the others route the flat gate list.
            let request =
                RouteRequest::with_spec(&full, &graph, spec.clone()).with_repetition(repetition);
            let cyc_outcome = cyc.route_request(&request);
            let cyc_time = cyc_outcome.wall_time().as_secs_f64();
            let cyc_cost = cyc_outcome.routed().and_then(|routed| {
                circuit::verify::verify(&full, &graph, routed)
                    .ok()
                    .map(|()| routed.added_gates())
            });

            let sm = run_tool(&*satmap, &bench, &graph, &spec);
            let tk = run_tool(&*tket, &bench, &graph, &spec);
            let fmt_cost = |c: Option<usize>| c.map_or("--".into(), |v| v.to_string());
            out.push_str(&row(&[
                n.to_string(),
                cycles.to_string(),
                fmt_cost(cyc_cost),
                format!("{cyc_time:.2}"),
                fmt_cost(sm.cost),
                format!("{:.2}", sm.seconds),
                fmt_cost(tk.cost),
                format!("{:.2}", tk.seconds),
            ]));
            out.push('\n');
        }
    }
    out
}

/// **Q3 breakdown / Table III** — TB-OLSQ vs NL-SATMAP vs SATMAP on the
/// main set plus CYC-SATMAP on QAOA.
pub fn q3_breakdown() -> String {
    let spec = env_spec();
    let suite = env_suite();
    let graph = devices::tokyo();
    let registry = RouterRegistry::standard();
    let mut out = format!(
        "Q3 (breakdown, Table III), budget {:?}\n",
        spec.budget.remaining_time().unwrap_or_default()
    );
    out.push_str(&row(&[
        "tool".into(),
        "main #".into(),
        "main max".into(),
        "qaoa #".into(),
        "qaoa max".into(),
    ]));
    out.push('\n');

    let qaoa_set: Vec<(usize, usize)> = [6usize, 8, 10, 12, 16]
        .iter()
        .flat_map(|&n| [(n, 2usize), (n, 4)])
        .collect();
    let qaoa_benches: Vec<Benchmark> = qaoa_set
        .iter()
        .map(|&(n, c)| {
            let (full, _) = qaoa_repeated(n, c, n as u64);
            Benchmark {
                name: full.name().to_string(),
                circuit: full,
            }
        })
        .collect();

    let tools: Vec<(&str, BoxedRouter)> = vec![
        ("TB-OLSQ", create(&registry, "olsq-tb")),
        ("NL-SATMAP", create(&registry, "nl-satmap")),
        ("SATMAP", create(&registry, "satmap")),
    ];
    for (name, tool) in &tools {
        let main = run_suite(&**tool, &suite, &graph, &spec, env_jobs());
        let qa = run_suite(&**tool, &qaoa_benches, &graph, &spec, env_jobs());
        let (ms, ml) = solved_summary(&main);
        let (qs, ql) = solved_summary(&qa);
        out.push_str(&row(&[
            name.to_string(),
            format!("{ms}/{}", main.len()),
            ml.to_string(),
            format!("{qs}/{}", qa.len()),
            ql.to_string(),
        ]));
        out.push('\n');
    }
    // CYC-SATMAP on QAOA only, with the repetition declared per request.
    let cyc = create(&registry, "cyc-satmap");
    let mut solved = 0usize;
    let mut largest = 0usize;
    for &(n, cycles) in &qaoa_set {
        let (full, repetition) = qaoa_repeated(n, cycles, n as u64);
        let request =
            RouteRequest::with_spec(&full, &graph, spec.clone()).with_repetition(repetition);
        if let Some(routed) = cyc.route_request(&request).routed() {
            if circuit::verify::verify(&full, &graph, routed).is_ok() {
                solved += 1;
                largest = largest.max(full.num_two_qubit_gates());
            }
        }
    }
    out.push_str(&row(&[
        "CYC-SATMAP".into(),
        "--".into(),
        "--".into(),
        format!("{solved}/{}", qaoa_set.len()),
        largest.to_string(),
    ]));
    out.push('\n');
    out
}

/// **Q4 / Fig. 14** — architecture variation: TKET/SATMAP cost ratio on
/// Tokyo+, Tokyo, Tokyo−.
pub fn q4() -> String {
    let spec = env_spec();
    let suite = env_suite();
    let registry = RouterRegistry::standard();
    let satmap = create(&registry, "satmap");
    let tket = create(&registry, "tket");
    let mut out = format!(
        "Q4: architecture variation, budget {:?}\n",
        spec.budget.remaining_time().unwrap_or_default()
    );
    for graph in [
        devices::tokyo_plus(),
        devices::tokyo(),
        devices::tokyo_minus(),
    ] {
        let satmap_out = run_suite(&*satmap, &suite, &graph, &spec, env_jobs());
        let solved: Vec<Benchmark> = suite
            .iter()
            .zip(&satmap_out)
            .filter(|(_, o)| o.solved())
            .map(|(b, _)| b.clone())
            .collect();
        let sm: Vec<RunOutcome> = satmap_out.into_iter().filter(|o| o.solved()).collect();
        let tk = run_suite(&*tket, &solved, &graph, &spec, env_jobs());
        let (text, ratios) =
            cost_ratio_block(&format!("TKET/SATMAP on {}", graph.name()), &tk, &sm);
        out.push_str(&text);
        let sd = {
            let m = mean(&ratios);
            (ratios.iter().map(|r| (r - m).powi(2)).sum::<f64>() / ratios.len().max(1) as f64)
                .sqrt()
        };
        out.push_str(&format!(
            "  (avg degree {:.1}, stddev of ratio {:.2})\n",
            graph.average_degree(),
            sd
        ));
    }
    out
}

/// **Q5 / Figs. 15–16** — scalability vs optimality: time-budget sweep and
/// cost ratio vs circuit size.
pub fn q5(time_sweep: bool) -> String {
    let suite = env_suite();
    let graph = devices::tokyo();
    let registry = RouterRegistry::standard();
    let satmap = create(&registry, "satmap");
    let mut out = String::new();
    if time_sweep {
        // Fig. 15: budgets as fractions/multiples of the baseline budget,
        // mirroring the paper's 100..7200 s sweep around 1800 s.
        let base_spec = env_spec();
        let base = base_spec.budget.remaining_time().unwrap_or_default();
        let baseline_out = run_suite(&*satmap, &suite, &graph, &base_spec, env_jobs());
        out.push_str(&format!(
            "Q5 (Fig. 15): cost ratio vs time budget (baseline {base:?})\n"
        ));
        out.push_str(&row(&[
            "budget".into(),
            "#solved".into(),
            "largest".into(),
            "avg ratio vs baseline".into(),
        ]));
        out.push('\n');
        for factor in [1.0f64 / 18.0, 1.0 / 6.0, 1.0 / 3.0, 1.0, 2.0, 3.0, 4.0] {
            let budget = base.mul_f64(factor);
            let spec = RouteSpec {
                budget: budget.into(),
                ..base_spec.clone()
            };
            let outcomes = run_suite(&*satmap, &suite, &graph, &spec, env_jobs());
            let (solved, largest) = solved_summary(&outcomes);
            let ratios: Vec<f64> = outcomes
                .iter()
                .zip(&baseline_out)
                .filter_map(|(o, b)| match (o.cost, b.cost) {
                    (Some(oc), Some(bc)) if bc > 0 => Some(oc as f64 / bc as f64),
                    (Some(0), Some(0)) => Some(1.0),
                    _ => None,
                })
                .collect();
            out.push_str(&row(&[
                format!("{:.1}s", budget.as_secs_f64()),
                format!("{solved}/{}", outcomes.len()),
                largest.to_string(),
                format!("{:.3}", mean(&ratios)),
            ]));
            out.push('\n');
        }
    } else {
        // Fig. 16: TKET/SATMAP cost ratio binned by circuit size.
        let spec = env_spec();
        let tket = create(&registry, "tket");
        out.push_str("Q5 (Fig. 16): TKET/SATMAP cost ratio vs circuit size\n");
        out.push_str(&row(&[
            "size bin".into(),
            "#benchmarks".into(),
            "mean ratio".into(),
        ]));
        out.push('\n');
        let bins = [
            (0usize, 25usize),
            (25, 50),
            (50, 100),
            (100, 200),
            (200, 600),
            (600, 10_000),
        ];
        for (lo, hi) in bins {
            let bin: Vec<Benchmark> = suite
                .iter()
                .filter(|b| (lo..hi).contains(&b.circuit.num_two_qubit_gates()))
                .cloned()
                .collect();
            let sm_out = run_suite(&*satmap, &bin, &graph, &spec, env_jobs());
            let solved: Vec<Benchmark> = bin
                .iter()
                .zip(&sm_out)
                .filter(|(_, o)| o.solved())
                .map(|(b, _)| b.clone())
                .collect();
            let tk_out = run_suite(&*tket, &solved, &graph, &spec, env_jobs());
            let mut ratios = Vec::new();
            for (s, t) in sm_out.iter().filter(|o| o.solved()).zip(&tk_out) {
                if let (Some(tc), Some(sc)) = (t.cost, s.cost) {
                    if sc > 0 {
                        ratios.push(tc as f64 / sc as f64);
                    } else if tc == 0 {
                        ratios.push(1.0);
                    }
                }
            }
            out.push_str(&row(&[
                format!("{lo}-{hi}"),
                ratios.len().to_string(),
                format!("{:.2}", mean(&ratios)),
            ]));
            out.push('\n');
        }
    }
    out
}

/// **Q6** — noise-aware (weighted MaxSAT) mode: solved counts for
/// fidelity-objective SATMAP vs the TB-OLSQ analogue under the same
/// objective class. The objective is a property of the *request*, so the
/// same registry router serves both modes.
pub fn q6() -> String {
    let spec = env_spec();
    let suite = env_suite();
    let graph = devices::tokyo();
    let noise = NoiseModel::synthetic(&graph, 2022);
    let registry = RouterRegistry::standard();
    let mut out = format!(
        "Q6: noise-aware (fidelity) mode, budget {:?}\n",
        spec.budget.remaining_time().unwrap_or_default()
    );

    let satmap = create(&registry, "satmap");
    let tb = create(&registry, "olsq-tb");
    let fidelity_spec = RouteSpec {
        objective: Objective::Fidelity(noise.clone()),
        ..spec.clone()
    };

    let sm_out = run_suite(&*satmap, &suite, &graph, &fidelity_spec, env_jobs());
    let tb_out = run_suite(&*tb, &suite, &graph, &spec, env_jobs());
    let (sm_solved, sm_largest) = solved_summary(&sm_out);
    let (tb_solved, tb_largest) = solved_summary(&tb_out);
    out.push_str(&format!(
        "SATMAP (fidelity): {sm_solved}/{} solved, largest {sm_largest}\n",
        sm_out.len()
    ));
    out.push_str(&format!(
        "TB-OLSQ analogue:  {tb_solved}/{} solved, largest {tb_largest}\n",
        tb_out.len()
    ));

    // Fidelity achieved on co-solved benchmarks (log-infidelity; lower is
    // better).
    let mut improved = 0usize;
    let mut co = 0usize;
    for (s, t) in sm_out.iter().zip(&tb_out) {
        if s.solved() && t.solved() {
            co += 1;
            // Compare added-gate counts as a proxy printed alongside.
            if s.cost <= t.cost {
                improved += 1;
            }
        }
    }
    out.push_str(&format!(
        "co-solved: {co}; SATMAP cost ≤ baseline on {improved} of them\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Smoke-test every runner on a tiny suite/budget so `cargo test`
    /// exercises the full experiment plumbing.
    #[test]
    fn all_runners_produce_reports() {
        let _guard = crate::runner::ENV_LOCK.lock().expect("env lock");
        std::env::set_var("SATMAP_BUDGET_MS", "200");
        std::env::set_var("SATMAP_SUITE_LIMIT", "4");
        let q1_report = q1(false);
        assert!(q1_report.contains("Table I"));
        assert!(
            q1_report.contains("Solver effort"),
            "telemetry must reach the experiment tables"
        );
        let q2_report = q2();
        assert!(q2_report.contains("SABRE"));
        let q4_report = q4();
        assert!(q4_report.contains("tokyo+"));
        let q6_report = q6();
        assert!(q6_report.contains("fidelity"));
        std::env::remove_var("SATMAP_BUDGET_MS");
        std::env::remove_var("SATMAP_SUITE_LIMIT");
    }
}

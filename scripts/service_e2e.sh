#!/usr/bin/env bash
# End-to-end loopback exercise of the routing service: start `routed` on
# an ephemeral port, drive it with `routed-client`, and check the NDJSON
# rows for the protocol contract — acks with server-assigned ids, solved
# outcome rows carrying request_id, a repeat request served from the
# route cache, a stats row that reconciles, and a drain row that shuts
# the daemon down cleanly. Run after `cargo build --release`.
set -euo pipefail

bin="${CARGO_TARGET_DIR:-target}/release"
if [ ! -x "$bin/routed" ] || [ ! -x "$bin/routed-client" ]; then
    cargo build --release -p service
fi

workdir=$(mktemp -d)
daemon_pid=""
cleanup() {
    [ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

fail() {
    echo "service_e2e: $1" >&2
    echo "--- daemon stderr ---" >&2
    cat "$workdir/routed.err" >&2 || true
    echo "--- client rows ---" >&2
    cat "$workdir/rows.ndjson" >&2 || true
    exit 1
}

# One worker: requests complete in submission order, so the repeated
# request below deterministically finds the first one's cached answer.
"$bin/routed" --addr 127.0.0.1:0 --workers 1 \
    >"$workdir/routed.out" 2>"$workdir/routed.err" &
daemon_pid=$!

# The daemon prints `listening HOST:PORT` once the socket is bound.
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/^listening //p' "$workdir/routed.out" | head -n1)
    [ -n "$addr" ] && break
    kill -0 "$daemon_pid" 2>/dev/null || fail "daemon exited before binding"
    sleep 0.1
done
[ -n "$addr" ] || fail "daemon never printed its listening address"

# Fig. 3 of the paper on a 4-qubit line: the SAT router, a heuristic,
# then the SAT router again (identical request -> route-cache hit).
fig3='[["cx",0,1],["cx",0,2],["cx",3,2],["cx",0,3]]'
cat >"$workdir/reqs.ndjson" <<EOF
# routed e2e request file (blank lines and comments are skipped)
{"verb":"route","router":"satmap","device":"linear:4","qubits":4,"circuit":$fig3}
{"verb":"route","router":"sabre","device":"linear:4","qubits":4,"circuit":$fig3}

{"verb":"route","router":"satmap","device":"linear:4","qubits":4,"circuit":$fig3}
EOF

"$bin/routed-client" --addr "$addr" --file "$workdir/reqs.ndjson" \
    --stats --drain >"$workdir/rows.ndjson"

[ "$(grep -c '"type":"ack"' "$workdir/rows.ndjson")" -eq 3 ] \
    || fail "expected 3 ack rows"
[ "$(grep -c '"type":"outcome"' "$workdir/rows.ndjson")" -eq 3 ] \
    || fail "expected 3 outcome rows"
[ "$(grep '"type":"outcome"' "$workdir/rows.ndjson" | grep -c '"solved":true')" -eq 3 ] \
    || fail "expected every outcome solved"
[ "$(grep '"type":"outcome"' "$workdir/rows.ndjson" | grep -c '"request_id":[0-9]')" -eq 3 ] \
    || fail "every outcome row must carry its server-assigned request_id"
grep -q '"cache_hit":true' "$workdir/rows.ndjson" \
    || fail "the repeated request must be served from the route cache"

stats=$(grep '"type":"stats"' "$workdir/rows.ndjson") || fail "no stats row"
for want in '"received":3' '"admitted":3' '"completed":3' '"solved":3' \
            '"failed":0' '"in_flight":0' '"queue_depth":0'; do
    echo "$stats" | grep -q "$want" || fail "stats row missing $want: $stats"
done
grep -q '"type":"drain"' "$workdir/rows.ndjson" || fail "no drain row"

# drain shuts the daemon down; it must exit 0 on its own.
wait "$daemon_pid"
daemon_pid=""
echo "service_e2e: OK ($addr)"

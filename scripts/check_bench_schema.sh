#!/usr/bin/env bash
# Schema check for BENCH_satmap.json: the bench report must carry the
# clause-arena / clause-sharing telemetry introduced with the flat arena,
# and the pigeonhole sharing probe must witness actual cooperation
# (nonzero clauses_imported). Run after `cargo bench -p bench`.
set -euo pipefail

report="${1:-BENCH_satmap.json}"

fail() {
    echo "check_bench_schema: $1" >&2
    exit 1
}

[ -s "$report" ] || fail "$report is missing or empty"

# Top-level sections.
for key in schema_version benchmarks groups portfolio_speedup sharing_telemetry routes; do
    grep -q "\"$key\"" "$report" || fail "missing top-level key \"$key\""
done

# Telemetry fields: in the sharing probe and in every route row. The
# strategy-engine fields (strategy, useful_imports, cross_call_imports)
# came with the strategy-racing MaxSAT engine; the warm-start fields
# (cache_hit, warm_start, reused_clauses) with the route cache; the
# resilience fields (quality, attempts, worker_panics) with the routing
# supervisor; request_id (per-row tracing id) with the routing service;
# the dispatch fields (dispatch_width, dispatch_mix, dispatch_sharing,
# dispatch_hardness) with the adaptive dispatcher; the weighted-core
# fields (strata, exhaustion_steps, hardened_softs) with the
# weight-stratified core-guided search.
for key in clauses_exported clauses_imported useful_imports cross_call_imports \
           compactions arena_bytes strategy cache_hit warm_start reused_clauses \
           quality attempts worker_panics request_id \
           dispatch_width dispatch_mix dispatch_sharing dispatch_hardness \
           strata exhaustion_steps hardened_softs; do
    grep -q "\"$key\"" "$report" || fail "missing telemetry field \"$key\""
done

# The criterion groups must have produced medians.
for group in '"sharing/on"' '"sharing/off"' '"arena/clone"' '"arena/reemit"' \
             '"maxsat_strategies/linear"' '"maxsat_strategies/core-guided"' \
             '"maxsat_strategies/race"' \
             '"weighted_core/stratified"' '"weighted_core/plain"' \
             '"weighted_core/linear"' \
             '"warmstart/cold"' '"warmstart/warm"' '"warmstart/cache-hit"' \
             '"dispatch/auto/fig3"' '"dispatch/serial/fig3"' '"dispatch/width4/fig3"' \
             '"dispatch/auto/random12"' '"dispatch/serial/random12"' \
             '"dispatch/width4/random12"'; do
    grep -q "$group" "$report" || fail "missing benchmark $group"
done

# Cooperation witness: the pigeonhole sharing probe must import clauses.
imported=$(sed -n 's/.*"sharing_telemetry": {[^}]*"clauses_imported": \([0-9]*\).*/\1/p' "$report")
[ -n "$imported" ] || fail "could not parse sharing_telemetry.clauses_imported"
[ "$imported" -gt 0 ] || fail "sharing probe imported 0 clauses (portfolio is not cooperating)"

echo "check_bench_schema: OK ($report, clauses_imported=$imported)"

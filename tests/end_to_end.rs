//! Cross-crate integration tests: QASM → encoding → MaxSAT → routed
//! circuit → independent verifier, across all routers in the registry.

use circuit::{qasm, verify::verify, Circuit, RouteRequest, Slicing};
use routers::{BoxedRouter, RouterRegistry};

fn all_routers() -> Vec<BoxedRouter> {
    let registry = RouterRegistry::standard();
    registry
        .names()
        .into_iter()
        .map(|name| registry.create(name).expect("registered"))
        .collect()
}

fn create(name: &str) -> BoxedRouter {
    RouterRegistry::standard().create(name).expect("registered")
}

#[test]
fn qasm_to_verified_routing_through_every_router() {
    let src = r#"
OPENQASM 2.0;
include "qelib1.inc";
qreg q[5];
h q[0];
cx q[0],q[1];
cx q[1],q[2];
cx q[0],q[3];
rz(pi/4) q[3];
cx q[3],q[4];
cx q[0],q[4];
"#;
    let circuit = qasm::parse(src).expect("parses");
    let graph = arch::devices::tokyo_minus();
    for router in all_routers() {
        let routed = router
            .route(&circuit, &graph)
            .unwrap_or_else(|e| panic!("{} failed: {e}", router.name()));
        verify(&circuit, &graph, &routed)
            .unwrap_or_else(|e| panic!("{} unverified: {e}", router.name()));
    }
}

#[test]
fn optimal_tools_agree_on_swap_count() {
    // On small instances all the exact encodings must find the same
    // optimal swap count (they share the n = 1 swaps-per-gap semantics).
    let nl_satmap = create("nl-satmap");
    let exhaustive = create("olsq");
    for seed in 0..4u64 {
        let circuit = circuit::generators::random_local(4, 6, 3, 0.0, seed);
        let graph = arch::devices::linear(4);
        let satmap = nl_satmap.route(&circuit, &graph);
        let exq = exhaustive.route(&circuit, &graph);
        match (satmap, exq) {
            (Ok(a), Ok(b)) => {
                verify(&circuit, &graph, &a).expect("satmap verifies");
                verify(&circuit, &graph, &b).expect("ex-mqt verifies");
                assert_eq!(
                    a.swap_count(),
                    b.swap_count(),
                    "seed {seed}: optimal costs must agree"
                );
            }
            (Err(a), Err(_)) => {
                // Both unsatisfiable under n = 1 is also agreement.
                assert!(matches!(a, circuit::RouteError::Unsatisfiable(_)));
            }
            (a, b) => panic!("seed {seed}: solvers disagree: {a:?} vs {b:?}"),
        }
    }
}

#[test]
fn satmap_never_worse_than_heuristics_on_small_optimal_instances() {
    // Optimality claim: on instances SATMAP solves to optimality, no
    // heuristic can beat it.
    let graph = arch::devices::tokyo_minus();
    let nl_satmap = create("nl-satmap");
    for seed in 0..4u64 {
        let circuit = circuit::generators::random_local(5, 8, 4, 0.1, seed);
        let sm = nl_satmap
            .route(&circuit, &graph)
            .expect("satmap solves small instances");
        verify(&circuit, &graph, &sm).expect("verifies");
        for name in ["sabre", "tket", "astar"] {
            let h = create(name);
            let routed = h.route(&circuit, &graph).expect("heuristic solves");
            verify(&circuit, &graph, &routed).expect("verifies");
            assert!(
                sm.swap_count() <= routed.swap_count(),
                "seed {seed}: {} beat optimal SATMAP ({} < {})",
                h.name(),
                routed.swap_count(),
                sm.swap_count()
            );
        }
    }
}

#[test]
fn suite_benchmarks_route_and_verify_with_heuristics() {
    // Every named small benchmark of the suite routes with every heuristic.
    let graph = arch::devices::tokyo();
    let suite = circuit::suite::suite();
    for bench in suite.iter().take(12) {
        for name in ["sabre", "tket", "astar"] {
            let h = create(name);
            let routed = h
                .route(&bench.circuit, &graph)
                .unwrap_or_else(|e| panic!("{} on {}: {e}", h.name(), bench.name));
            verify(&bench.circuit, &graph, &routed)
                .unwrap_or_else(|e| panic!("{} on {}: {e}", h.name(), bench.name));
        }
    }
}

#[test]
fn qasm_round_trip_preserves_routability() {
    let original = circuit::generators::qft(5);
    let text = qasm::print(&original);
    let reparsed = qasm::parse(&text).expect("round trips");
    assert_eq!(original.gates(), reparsed.gates());
    let graph = arch::devices::tokyo();
    let tket = create("tket");
    let a = tket.route(&original, &graph).expect("routes");
    let b = tket.route(&reparsed, &graph).expect("routes");
    assert_eq!(a, b, "routing is a function of the parsed circuit");
}

#[test]
fn sliced_routing_matches_paper_cost_metric() {
    // added_gates is always 3 × swap_count.
    let circuit = circuit::generators::random_local(6, 20, 5, 0.3, 11);
    let graph = arch::devices::tokyo_minus();
    let outcome = create("satmap")
        .route_request(&RouteRequest::new(&circuit, &graph).with_slicing(Slicing::Sliced(5)));
    let routed = outcome.routed().expect("solves");
    verify(&circuit, &graph, routed).expect("verifies");
    assert_eq!(routed.added_gates(), 3 * routed.swap_count());
}

#[test]
fn empty_and_one_qubit_circuits() {
    // Gate-free circuits (with qubits) are valid requests and route with
    // zero swaps; only *zero-qubit* circuits are rejected as invalid.
    let graph = arch::devices::linear(3);
    let empty = Circuit::new(2);
    let mut h_only = Circuit::new(2);
    h_only.h(0);
    h_only.h(1);
    for c in [empty, h_only] {
        for router in all_routers() {
            let routed = router
                .route(&c, &graph)
                .unwrap_or_else(|e| panic!("{}: {e}", router.name()));
            verify(&c, &graph, &routed).unwrap_or_else(|e| panic!("{}: {e}", router.name()));
            assert_eq!(routed.swap_count(), 0);
        }
    }
}

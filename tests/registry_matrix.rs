//! Registry matrix test (the acceptance surface of the routing API
//! redesign): every registered router is constructed *by name*, routes the
//! paper's Fig. 3 running example plus one 8-qubit suite instance through
//! a [`circuit::RouteRequest`], and every claimed solution goes through
//! the independent verifier. Unknown names must fail with a listing of
//! the valid ones.

use std::time::Duration;

use circuit::{verify::verify, Circuit, RouteError, RouteRequest, Slicing};
use routers::RouterRegistry;

/// The paper's Fig. 3a running example.
fn fig3() -> Circuit {
    let mut c = Circuit::new(4);
    c.cx(0, 1);
    c.cx(0, 2);
    c.cx(3, 2);
    c.cx(0, 3);
    c
}

/// One 8-qubit instance from the paper-scale benchmark suite.
fn suite_8q() -> circuit::suite::Benchmark {
    circuit::suite::suite()
        .into_iter()
        .find(|b| b.circuit.num_qubits() == 8)
        .expect("the suite spans 3..=16 qubits")
}

#[test]
fn every_registered_router_solves_fig3_by_name() {
    let registry = RouterRegistry::standard();
    let circuit = fig3();
    // Fig. 3b is a 4-qubit path, so the example needs a real swap.
    let graph = arch::ConnectivityGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
    for name in registry.names() {
        let router = registry.create(name).expect("registered name constructs");
        let request = RouteRequest::new(&circuit, &graph).with_budget(Duration::from_secs(60));
        let outcome = router.route_request(&request);
        let routed = outcome
            .routed()
            .unwrap_or_else(|| panic!("{name}: {:?}", outcome.error()));
        verify(&circuit, &graph, routed).unwrap_or_else(|e| panic!("{name} unverified: {e}"));
        assert!(
            routed.swap_count() >= 1,
            "{name}: Fig. 3 needs at least one swap on the path"
        );
        assert_eq!(outcome.router(), router.name());
        assert!(outcome.wall_time() > Duration::ZERO);
    }
}

#[test]
fn every_registered_router_handles_an_8_qubit_suite_instance() {
    let registry = RouterRegistry::standard();
    let bench = suite_8q();
    let graph = arch::devices::tokyo();
    for name in registry.names() {
        let router = registry.create(name).expect("registered name constructs");
        // A small slice keeps the SAT encodings tractable on debug builds;
        // the budget bounds the exact tools, whose whole point (the
        // paper's Q1) is that they do *not* scale to such instances.
        let request = RouteRequest::new(&bench.circuit, &graph)
            .with_budget(Duration::from_secs(4))
            .with_slicing(Slicing::Sliced(8));
        let outcome = router.route_request(&request);
        match outcome.result() {
            Ok(routed) => {
                verify(&bench.circuit, &graph, routed)
                    .unwrap_or_else(|e| panic!("{name} on {}: {e}", bench.name));
            }
            Err(RouteError::Timeout) => {
                // The exact baselines are allowed to exhaust the budget —
                // but the effort must still be reported.
                assert!(
                    outcome.telemetry().sat_calls > 0
                        || outcome.telemetry().encode_time > Duration::ZERO,
                    "{name}: timed out without reporting any effort"
                );
            }
            Err(e) => panic!("{name} on {}: unexpected error {e}", bench.name),
        }
        // The pure heuristics must always solve it.
        if matches!(name, "sabre" | "tket" | "astar") {
            assert!(outcome.solved(), "{name} must solve the 8-qubit instance");
        }
    }
}

#[test]
fn unknown_names_report_the_valid_listing() {
    let registry = RouterRegistry::standard();
    for bogus in ["qiskit", "SATMAP", ""] {
        let err = match registry.create(bogus) {
            Err(e) => e,
            Ok(_) => panic!("'{bogus}' must not resolve"),
        };
        let msg = err.to_string();
        for name in registry.names() {
            assert!(
                msg.contains(name),
                "error for '{bogus}' must list {name}: {msg}"
            );
        }
    }
}

#[test]
fn malformed_requests_fail_typed_before_any_solving() {
    let registry = RouterRegistry::standard();
    let graph = arch::devices::linear(3);
    let oversized = Circuit::new(9);
    let zero_qubits = Circuit::new(0);
    let mut disconnected_target = Circuit::new(3);
    disconnected_target.cx(0, 2);
    let disconnected = arch::ConnectivityGraph::from_edges(4, [(0, 1), (2, 3)]);
    for name in registry.names() {
        let router = registry.create(name).expect("constructs");
        for (label, circuit, graph) in [
            ("oversized", &oversized, &graph),
            ("zero-qubit", &zero_qubits, &graph),
            ("disconnected", &disconnected_target, &disconnected),
        ] {
            let outcome = router.route_request(&RouteRequest::new(circuit, graph));
            assert!(
                matches!(outcome.error(), Some(RouteError::InvalidRequest(_))),
                "{name}/{label}: expected InvalidRequest, got {:?}",
                outcome.result()
            );
        }
    }
}

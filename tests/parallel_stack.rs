//! Cross-layer tests of the parallel solving subsystem: request-time
//! portfolio sizing against serial solving on the paper's workloads,
//! cooperative cancellation through the budget-inheritance chain, and the
//! multi-core experiment runner's determinism.

use std::time::{Duration, Instant};

use circuit::{verify::verify, Circuit, Parallelism, RouteRequest, RouteSpec, Slicing};
use experiments::runner::{run_suite, run_tool};
use routers::RouterRegistry;
use sat::{
    CancelToken, DefaultBackend, Lit, PortfolioBackend, ResourceBudget, SatBackend, SharingConfig,
    SolveResult,
};

/// The paper's Fig. 3a running example.
fn fig3() -> Circuit {
    let mut c = Circuit::new(4);
    c.cx(0, 1);
    c.cx(0, 2);
    c.cx(3, 2);
    c.cx(0, 3);
    c
}

/// Small workloads spanning the suite's circuit families.
fn small_workloads() -> Vec<(String, Circuit)> {
    vec![
        ("fig3".into(), fig3()),
        ("qft4".into(), circuit::generators::qft(4)),
        ("graycode6".into(), circuit::generators::graycode(6)),
        (
            "random_local".into(),
            circuit::generators::random_local(5, 10, 4, 0.2, 1),
        ),
        ("ising6".into(), circuit::generators::ising_model(6, 1)),
    ]
}

#[test]
fn portfolio_routing_costs_match_serial_requests() {
    // The same registry router serves a serial and a 4-wide-portfolio
    // request; both solve to optimality (unlimited budget), so the SWAP
    // counts must be identical: the portfolio changes the wall-clock route
    // to the optimum, never the optimum itself.
    let graph = arch::devices::tokyo_minus();
    let router = RouterRegistry::standard()
        .create("nl-satmap")
        .expect("registered");
    for (name, circuit) in small_workloads() {
        let serial = router
            .route_request(
                &RouteRequest::new(&circuit, &graph).with_parallelism(Parallelism::Serial),
            )
            .into_result()
            .unwrap_or_else(|e| panic!("{name}: serial failed: {e}"));
        let wide = router
            .route_request(
                &RouteRequest::new(&circuit, &graph).with_parallelism(Parallelism::Width(4)),
            )
            .into_result()
            .unwrap_or_else(|e| panic!("{name}: portfolio failed: {e}"));
        verify(&circuit, &graph, &wide).unwrap_or_else(|e| panic!("{name}: unverified: {e}"));
        assert_eq!(
            serial.added_gates(),
            wide.added_gates(),
            "{name}: portfolio must reproduce the optimal cost"
        );
    }
}

#[test]
fn strategy_race_routing_costs_match_linear_requests() {
    // The same registry router serves the Fig. 3 suite under the default
    // linear strategy and under a strategy race; both prove optimality
    // (unlimited budget), so the SWAP counts must be identical — racing
    // core-guided against linear changes the route to the optimum, never
    // the optimum. The race request also reports which strategy won.
    let graph = arch::devices::tokyo_minus();
    let router = RouterRegistry::standard()
        .create("nl-satmap")
        .expect("registered");
    for (name, circuit) in small_workloads() {
        let linear = router
            .route_request(&RouteRequest::new(&circuit, &graph))
            .into_result()
            .unwrap_or_else(|e| panic!("{name}: linear failed: {e}"));
        let race_outcome = router.route_request(
            &RouteRequest::new(&circuit, &graph).with_strategy(circuit::SearchStrategy::Race),
        );
        assert_eq!(race_outcome.diagnostic("strategy"), Some("race"));
        let winner = race_outcome
            .telemetry()
            .strategy
            .unwrap_or_else(|| panic!("{name}: race must report its winning strategy"));
        assert!(
            winner == "linear-sat-unsat" || winner == "core-guided",
            "{name}: unexpected winner {winner}"
        );
        let raced = race_outcome
            .into_result()
            .unwrap_or_else(|e| panic!("{name}: race failed: {e}"));
        verify(&circuit, &graph, &raced).unwrap_or_else(|e| panic!("{name}: unverified: {e}"));
        assert_eq!(
            linear.added_gates(),
            raced.added_gates(),
            "{name}: the strategy race must reproduce the optimal cost"
        );
    }
}

#[test]
fn core_guided_strategy_routes_the_fig3_example() {
    // The per-request strategy knob reaches the MaxSAT engine: a pure
    // core-guided route of the running example still verifies and reports
    // its strategy through the outcome telemetry and the JSON row.
    let graph = arch::devices::tokyo_minus();
    let router = RouterRegistry::standard()
        .create("nl-satmap")
        .expect("registered");
    let circuit = fig3();
    let outcome = router.route_request(
        &RouteRequest::new(&circuit, &graph).with_strategy(circuit::SearchStrategy::CoreGuided),
    );
    let routed = outcome.routed().expect("solves");
    verify(&circuit, &graph, routed).expect("verifies");
    assert_eq!(routed.swap_count(), 1, "fig3 optimum");
    assert_eq!(outcome.telemetry().strategy, Some("core-guided"));
    assert!(outcome.to_json().contains("\"strategy\":\"core-guided\""));
    assert!(outcome.to_json().contains("\"cross_call_imports\":"));
}

#[test]
fn portfolio_telemetry_reports_winner_through_the_stack() {
    let graph = arch::devices::tokyo_minus();
    let router = RouterRegistry::standard()
        .create("nl-satmap")
        .expect("registered");
    let circuit = fig3();
    let request = RouteRequest::new(&circuit, &graph).with_parallelism(Parallelism::Width(4));
    let outcome = router.route_request(&request);
    assert!(outcome.solved(), "fig3 routes");
    assert!(outcome.telemetry().sat_calls > 0);
    assert!(
        outcome.telemetry().winning_worker.is_some(),
        "the winning worker index must flow up into telemetry: {}",
        outcome.telemetry()
    );
    assert_eq!(outcome.diagnostic("portfolio_width"), Some("4"));
}

#[test]
fn auto_race_on_fig3_dispatches_one_linear_worker_without_sharing() {
    // Dispatch regression: a fig3-sized request under the widest hints
    // (`Auto` parallelism, `Race` strategy) must still resolve to a
    // width-1 linear plan with sharing off — the bench data says the
    // parallel machinery loses on instances this small, and the decision
    // must be visible in telemetry and the JSON row.
    let graph = arch::devices::tokyo_minus();
    let router = RouterRegistry::standard()
        .create("nl-satmap")
        .expect("registered");
    let circuit = fig3();
    let outcome = router.route_request(
        &RouteRequest::new(&circuit, &graph)
            .with_parallelism(Parallelism::Auto)
            .with_strategy(circuit::SearchStrategy::Race),
    );
    let routed = outcome.routed().expect("solves");
    verify(&circuit, &graph, routed).expect("verifies");
    assert_eq!(routed.swap_count(), 1, "fig3 optimum");
    let t = outcome.telemetry();
    assert_eq!(t.dispatch_width, 1, "small instances stay width 1");
    assert_eq!(t.dispatch_mix, Some("linear"), "the race degenerates");
    assert!(!t.dispatch_sharing, "no exchange for a lone worker");
    assert!(
        t.dispatch_hardness > 0 && t.dispatch_hardness < maxsat::dispatch::SMALL_INSTANCE,
        "fig3 sits below the small-instance gate, got {}",
        t.dispatch_hardness
    );
    let row = outcome.to_json();
    assert!(row.contains("\"dispatch_width\":1"), "{row}");
    assert!(row.contains("\"dispatch_mix\":\"linear\""), "{row}");
    assert!(row.contains("\"dispatch_sharing\":false"), "{row}");
}

/// Hard pigeonhole clauses: would run far longer than any test timeout.
fn load_pigeonhole<B: SatBackend>(backend: &mut B, pigeons: usize, holes: usize) {
    backend.reserve_vars(pigeons * holes);
    let var = |p: usize, h: usize| Lit::from_dimacs((p * holes + h + 1) as i64);
    for p in 0..pigeons {
        let row: Vec<Lit> = (0..holes).map(|h| var(p, h)).collect();
        backend.add_clause(&row);
    }
    for h in 0..holes {
        for p1 in 0..pigeons {
            for p2 in (p1 + 1)..pigeons {
                backend.add_clause(&[!var(p1, h), !var(p2, h)]);
            }
        }
    }
}

#[test]
fn cancellation_kills_workers_mid_search_without_panic() {
    // Stress: repeatedly kill a racing portfolio mid-search from another
    // thread; every round must come back Unknown promptly, leave no panic,
    // and still charge the effort spent to the merged statistics.
    let started = Instant::now();
    for round in 0..5u64 {
        let mut p = PortfolioBackend::<DefaultBackend>::with_width(3);
        load_pigeonhole(&mut p, 10, 9);
        let (budget, token) = ResourceBudget::unlimited().cancellable();
        std::thread::scope(|s| {
            s.spawn(|| {
                std::thread::sleep(Duration::from_millis(10 + 7 * round));
                token.cancel();
            });
            let r = p.solve_under_assumptions(&[], &budget);
            assert_eq!(r, SolveResult::Unknown, "round {round}: cancel must win");
        });
        assert!(
            p.stats().decisions > 0 || p.stats().propagations > 0,
            "round {round}: killed workers must still charge telemetry"
        );
    }
    assert!(
        started.elapsed() < Duration::from_secs(60),
        "cancellation must cut each race to ~the kill delay"
    );
}

#[test]
fn child_worker_cannot_outlive_parent_budget() {
    // The race token is a child of the caller's token: cancelling the
    // *parent* (as an experiment sweep teardown would) must stop the whole
    // portfolio, even though each worker armed its own child budget.
    let (parent, parent_token) = ResourceBudget::unlimited().cancellable();
    let (child, _child_token) = parent.cancellable();
    let mut p = PortfolioBackend::<DefaultBackend>::with_width(2);
    load_pigeonhole(&mut p, 10, 9);
    let started = Instant::now();
    std::thread::scope(|s| {
        s.spawn(|| {
            std::thread::sleep(Duration::from_millis(30));
            parent_token.cancel();
        });
        let r = p.solve_under_assumptions(&[], &child);
        assert_eq!(r, SolveResult::Unknown);
    });
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "grandchild workers outlived the cancelled ancestor budget"
    );
}

#[test]
fn cancel_token_reaches_a_plain_solver_deep_in_the_chain() {
    // Not just portfolios: any solver armed with a descendant budget stops
    // when an ancestor token fires, regardless of nesting depth.
    let mut solver = DefaultBackend::default();
    load_pigeonhole(&mut solver, 10, 9);
    let (root, token) = ResourceBudget::unlimited().cancellable();
    let deep = root
        .limit_time(Duration::from_secs(3600))
        .arm()
        .limit_time(Duration::from_secs(1800))
        .arm();
    std::thread::scope(|s| {
        s.spawn(|| {
            std::thread::sleep(Duration::from_millis(20));
            token.cancel();
        });
        let started = Instant::now();
        let r = solver.solve_under_assumptions(&[], &deep);
        assert_eq!(r, SolveResult::Unknown);
        assert!(started.elapsed() < Duration::from_secs(30));
    });
}

#[test]
fn sharing_portfolio_maxsat_costs_match_serial_backend() {
    // The acceptance bar for clause sharing: a width-4 sharing portfolio
    // driven by the MaxSAT engine must land on exactly the optimal costs
    // the serial backend proves, across weighted instances. (Sharing is on
    // by default, so the width-4 path here races cooperating workers.)
    use maxsat::{solve_with_options, MaxSatStatus, SolveOptions, WcnfInstance};

    let build_instances = || -> Vec<WcnfInstance> {
        let mut instances = Vec::new();
        // Weighted choice chain.
        let mut inst = WcnfInstance::new();
        let a = inst.new_var().positive();
        let b = inst.new_var().positive();
        let c = inst.new_var().positive();
        inst.add_hard([a, b]);
        inst.add_hard([!a, c]);
        inst.add_soft(5, [!a]);
        inst.add_soft(2, [!b]);
        inst.add_soft(1, [!c]);
        instances.push(inst);
        // Pigeonhole-flavoured: every pigeon placed softly, holes exclusive.
        let mut php = WcnfInstance::new();
        let vars: Vec<_> = (0..6).map(|_| php.new_var().positive()).collect();
        for p in 0..3 {
            php.add_soft(1 + p as u64, [vars[2 * p], vars[2 * p + 1]]);
        }
        for h in 0..2 {
            for p1 in 0..3 {
                for p2 in (p1 + 1)..3 {
                    php.add_hard([!vars[2 * p1 + h], !vars[2 * p2 + h]]);
                }
            }
        }
        instances.push(php);
        instances
    };

    for (i, inst) in build_instances().into_iter().enumerate() {
        let serial = maxsat::solve(&inst, ResourceBudget::unlimited());
        let portfolio = solve_with_options::<PortfolioBackend<DefaultBackend>>(
            &inst,
            &ResourceBudget::unlimited(),
            &SolveOptions::default().with_portfolio_width(4),
        );
        assert_eq!(serial.status, portfolio.status, "instance {i}");
        assert_eq!(
            serial.cost, portfolio.cost,
            "instance {i}: sharing portfolio must reproduce the serial optimum"
        );
        if serial.status == MaxSatStatus::Optimal {
            let model = portfolio.model.expect("optimal outcome has a model");
            assert_eq!(inst.cost_of(&model), portfolio.cost, "instance {i}");
        }
    }
}

#[test]
fn sharing_on_and_off_portfolios_agree_and_cooperate() {
    // Same hard UNSAT race with sharing on and off: identical answers,
    // and the sharing side must actually move clauses (nonzero imports).
    // PHP(7,6) sits below the default `min_instance_size` gate, so the
    // sharing side opens it explicitly — the override the gate documents.
    let mut with_sharing = PortfolioBackend::<DefaultBackend>::with_width(4);
    with_sharing.set_sharing_config(SharingConfig {
        min_instance_size: 0,
        ..SharingConfig::default()
    });
    load_pigeonhole(&mut with_sharing, 7, 6);
    let mut without = PortfolioBackend::<DefaultBackend>::with_width(4);
    without.set_sharing(false);
    load_pigeonhole(&mut without, 7, 6);
    let unlimited = ResourceBudget::unlimited();
    assert_eq!(
        with_sharing.solve_under_assumptions(&[], &unlimited),
        SolveResult::Unsat
    );
    assert_eq!(
        without.solve_under_assumptions(&[], &unlimited),
        SolveResult::Unsat
    );
    assert!(
        with_sharing.stats().clauses_imported > 0,
        "sharing race must import peer clauses: {}",
        with_sharing.stats()
    );
    assert_eq!(
        without.stats().clauses_imported,
        0,
        "sharing off must not import"
    );
}

#[test]
fn routing_telemetry_carries_arena_and_sharing_fields() {
    // The new counters must flow through maxsat into RouteOutcome and its
    // JSON row — the schema the experiment sweeps and BENCH_satmap.json
    // share.
    let graph = arch::devices::tokyo_minus();
    let router = RouterRegistry::standard()
        .create("nl-satmap")
        .expect("registered");
    let circuit = fig3();
    let request = RouteRequest::new(&circuit, &graph).with_parallelism(Parallelism::Width(2));
    let outcome = router.route_request(&request);
    assert!(outcome.solved(), "fig3 routes");
    assert!(
        outcome.telemetry().arena_bytes > 0,
        "solver arena footprint must reach routing telemetry: {}",
        outcome.telemetry()
    );
    let json = outcome.to_json();
    for key in [
        "\"clauses_exported\":",
        "\"clauses_imported\":",
        "\"compactions\":",
        "\"arena_bytes\":",
    ] {
        assert!(json.contains(key), "row schema must carry {key}: {json}");
    }
}

#[test]
fn diversified_workers_agree_on_unsat() {
    // Diversification changes the search order, never the answer.
    for n in 0..5usize {
        let mut s = sat::Solver::with_config(sat::SolverConfig::diversified(n));
        load_pigeonhole(&mut s, 4, 3);
        assert_eq!(s.solve(), SolveResult::Unsat, "worker {n} preset");
    }
}

#[test]
fn jobs_4_runner_rows_match_jobs_1() {
    // The acceptance criterion behind `--jobs N`: outputs are order-stable
    // and solution-identical for any job count (wall-clock columns aside,
    // which no fixed schedule could pin down).
    let suite: Vec<circuit::suite::Benchmark> = small_workloads()
        .into_iter()
        .map(|(name, circuit)| circuit::suite::Benchmark { name, circuit })
        .collect();
    let graph = arch::devices::tokyo();
    let router = RouterRegistry::standard()
        .create("satmap")
        .expect("registered");
    let spec = RouteSpec {
        slicing: Slicing::Sliced(4),
        // Auto resolves against the job count inside run_suite — the
        // budget-aware portfolio sizing under test here.
        parallelism: Parallelism::Auto,
        ..RouteSpec::default()
    };
    let serial = run_suite(&*router, &suite, &graph, &spec, 1);
    let parallel = run_suite(&*router, &suite, &graph, &spec, 4);
    let rows = |outcomes: &[experiments::runner::RunOutcome]| -> Vec<String> {
        outcomes
            .iter()
            .map(|o| format!("{}|{}|{:?}|{:?}", o.name, o.size, o.cost, o.error))
            .collect()
    };
    assert_eq!(
        rows(&serial),
        rows(&parallel),
        "--jobs 4 must reproduce --jobs 1 byte-for-byte (timing aside)"
    );
    // And the parallel path agrees with the plain single-instance API.
    for (bench, row) in suite.iter().zip(&parallel) {
        let direct = run_tool(&*router, bench, &graph, &spec);
        assert_eq!(direct.cost, row.cost, "{}", bench.name);
    }
}

#[test]
fn cancel_token_chain_is_shared_not_copied() {
    // Guard against a regression to `Copy` semantics: cloning a budget
    // must share the token, not snapshot it.
    let token = CancelToken::new();
    let a = ResourceBudget::unlimited().with_cancel(token.clone());
    let b = a.clone().limit_time(Duration::from_secs(5)).arm();
    token.cancel();
    assert!(a.expired());
    assert!(b.expired(), "derived budgets observe the same token");
}

//! Cross-layer tests of the unified solver stack: the paper's Fig. 3
//! running example through *every* router (constructed by name from the
//! registry), budget inheritance across nesting levels, and telemetry
//! propagation through [`circuit::RouteOutcome`].

use std::time::{Duration, Instant};

use circuit::{verify::verify, Circuit, RouteRequest, Slicing};
use routers::{BoxedRouter, RouterRegistry};
use sat::{ResourceBudget, SatBackend, SolveResult};

/// The paper's Fig. 3a running example.
fn fig3() -> Circuit {
    let mut c = Circuit::new(4);
    c.cx(0, 1);
    c.cx(0, 2);
    c.cx(3, 2);
    c.cx(0, 3);
    c
}

/// Every router in the repository, by registry name.
fn every_router() -> Vec<(&'static str, BoxedRouter)> {
    let registry = RouterRegistry::standard();
    registry
        .names()
        .into_iter()
        .map(|name| (name, registry.create(name).expect("registered")))
        .collect()
}

#[test]
fn fig3_routes_and_verifies_through_every_router() {
    let circuit = fig3();
    // Fig. 3b is a 4-qubit path; use it directly so the example needs a
    // real swap.
    let graph = arch::ConnectivityGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
    let mut names = Vec::new();
    for (reg_name, router) in every_router() {
        // The sliced relaxation, exercised through the request override.
        let request = RouteRequest::new(&circuit, &graph).with_slicing(Slicing::Sliced(2));
        let outcome = router.route_request(&request);
        let routed = outcome
            .routed()
            .unwrap_or_else(|| panic!("{reg_name} failed: {:?}", outcome.error()));
        verify(&circuit, &graph, routed)
            .unwrap_or_else(|e| panic!("{} unverified: {e}", router.name()));
        assert!(
            routed.swap_count() >= 1,
            "{}: Fig. 3 needs at least one swap on the path",
            router.name()
        );
        names.push(router.name().to_string());
    }
    // All seven tool families of the paper's comparison are present.
    for expected in [
        "satmap",
        "nl-satmap",
        "cyc-satmap",
        "sabre",
        "tket",
        "mqth-astar",
        "ex-mqt",
        "tb-olsq",
    ] {
        assert!(
            names.iter().any(|n| n == expected),
            "router {expected} missing from the stack (got {names:?})"
        );
    }
}

#[test]
fn fig3_telemetry_flows_from_every_constraint_router() {
    let circuit = fig3();
    let graph = arch::devices::tokyo_minus();
    for (reg_name, router) in every_router() {
        let outcome = router.route_request(&RouteRequest::new(&circuit, &graph));
        let routed = outcome
            .routed()
            .unwrap_or_else(|| panic!("{reg_name} failed: {:?}", outcome.error()));
        verify(&circuit, &graph, routed)
            .unwrap_or_else(|e| panic!("{} unverified: {e}", router.name()));
        let telemetry = outcome.telemetry();
        let is_heuristic = matches!(router.name(), "sabre" | "tket" | "mqth-astar");
        if is_heuristic {
            assert_eq!(
                telemetry.sat_calls,
                0,
                "{} should spend no solver effort",
                router.name()
            );
        } else {
            assert!(
                telemetry.sat_calls > 0,
                "{} must report its SAT calls ({telemetry})",
                router.name()
            );
        }
        assert!(
            outcome.wall_time() > Duration::ZERO,
            "{reg_name}: outcomes always carry wall-clock timing"
        );
    }
}

#[test]
fn child_sat_call_cannot_exceed_parent_deadline() {
    // An armed parent budget fixes an absolute deadline; a child that asks
    // for far more time must be clamped to it.
    let parent = ResourceBudget::with_time(Duration::from_millis(40)).arm();
    let child = parent.limit_time(Duration::from_secs(3600)).arm();
    assert_eq!(
        child.deadline(),
        parent.deadline(),
        "arming must clamp the child to the inherited deadline"
    );

    // Drive a genuinely hard SAT instance (pigeonhole 10/9) through the
    // backend under the child budget: the call must come back around the
    // parent's deadline, not the child's requested hour.
    let mut backend = sat::DefaultBackend::default();
    let (pigeons, holes) = (10usize, 9usize);
    let lit = |p: usize, h: usize| sat::Lit::from_dimacs((p * holes + h + 1) as i64);
    backend.reserve_vars(pigeons * holes);
    for p in 0..pigeons {
        let row: Vec<sat::Lit> = (0..holes).map(|h| lit(p, h)).collect();
        SatBackend::add_clause(&mut backend, &row);
    }
    for h in 0..holes {
        for p1 in 0..pigeons {
            for p2 in (p1 + 1)..pigeons {
                SatBackend::add_clause(&mut backend, &[!lit(p1, h), !lit(p2, h)]);
            }
        }
    }
    let started = Instant::now();
    let result = backend.solve_under_assumptions(&[], &child);
    let elapsed = started.elapsed();
    assert_eq!(result, SolveResult::Unknown, "deadline must cut the search");
    assert!(
        elapsed < Duration::from_secs(30),
        "child ran {elapsed:?}, far beyond the parent's 40ms deadline"
    );
}

#[test]
fn routing_budget_bounds_nested_layers_end_to_end() {
    // A tight per-request budget must bound the *whole* stack (slice loop
    // → MaxSAT → SAT calls), not just the outermost check.
    let c = circuit::generators::random_local(8, 40, 7, 0.1, 5);
    let graph = arch::devices::tokyo();
    let budget = Duration::from_millis(150);
    let router = RouterRegistry::standard()
        .create("satmap")
        .expect("registered");
    let request = RouteRequest::new(&c, &graph)
        .with_budget(budget)
        .with_slicing(Slicing::Sliced(4));
    let started = Instant::now();
    let outcome = router.route_request(&request);
    let elapsed = started.elapsed();
    // Solved fast or timed out — but never far past the deadline (the SAT
    // solver checks its budget at coarse intervals, so allow slack).
    assert!(
        elapsed < Duration::from_secs(20),
        "routing ran {elapsed:?} against a {budget:?} budget: {:?}",
        outcome.result()
    );
    if let Some(routed) = outcome.routed() {
        verify(&c, &graph, routed).expect("verifies");
    }
}

#[test]
fn telemetry_is_reported_even_when_routing_fails() {
    // Effort spent before a timeout must reach the caller — timed-out
    // attempts are exactly the ones the effort tables must not zero out.
    let c = circuit::generators::random_local(8, 40, 7, 0.1, 5);
    let graph = arch::devices::tokyo();
    let router = RouterRegistry::standard()
        .create("satmap")
        .expect("registered");
    let request = RouteRequest::new(&c, &graph)
        .with_budget(Duration::from_millis(50))
        .with_slicing(Slicing::Sliced(4));
    let outcome = router.route_request(&request);
    if !outcome.solved() {
        let telemetry = outcome.telemetry();
        assert!(
            telemetry.encode_time > Duration::ZERO || telemetry.sat_calls > 0,
            "failed attempt reported zero effort: {telemetry}"
        );
    }
}

#[test]
fn unlimited_sliced_routing_is_complete_on_random_instances() {
    // The deepening fallback makes the local relaxation complete: random
    // instances route for every slice size, including ones that exhaust
    // plain final-map backtracking.
    let router = RouterRegistry::standard()
        .create("satmap")
        .expect("registered");
    for seed in [3u64, 7, 11] {
        let c = circuit::generators::random_local(6, 20, 5, 0.3, seed);
        let graph = arch::devices::tokyo_minus();
        for slice in [2usize, 5] {
            let request = RouteRequest::new(&c, &graph).with_slicing(Slicing::Sliced(slice));
            let outcome = router.route_request(&request);
            let routed = outcome
                .routed()
                .unwrap_or_else(|| panic!("seed {seed} slice {slice}: {:?}", outcome.error()));
            verify(&c, &graph, routed).expect("verifies");
        }
    }
}

//! Property tests across the whole stack: random circuits on random
//! devices route and verify with every router, and the exact solvers'
//! costs are mutually consistent.

use proptest::prelude::*;

use circuit::{
    verify::verify, Circuit, Objective, Parallelism, RouteRequest, RoutedCircuit, RoutedOp, Router,
    SearchStrategy,
};
use heuristics::{Sabre, Tket};
use satmap::{PortfolioSatMap, SatMap, SatMapConfig};

/// Strategy: a random circuit over `n` qubits with up to `max_gates`
/// two-qubit gates plus sprinkled single-qubit gates.
fn circuit_strategy(n: usize, max_gates: usize) -> impl Strategy<Value = Circuit> {
    prop::collection::vec((0..n, 0..n, prop::bool::ANY), 1..=max_gates).prop_map(move |specs| {
        let mut c = Circuit::new(n);
        for (a, b, with_h) in specs {
            if a != b {
                c.cx(a, b);
            }
            if with_h {
                c.h(a);
            }
        }
        c
    })
}

/// The fidelity encoding's exact quantized objective: the sum of
/// `NoiseModel::fidelity_weight` over inserted SWAPs and executed
/// two-qubit gates. Two proven-optimal routings must agree on this
/// integer even when their float log-infidelities collide in the last
/// bits or the optima place gates differently.
fn quantized_infidelity(routed: &RoutedCircuit, source: &Circuit, noise: &arch::NoiseModel) -> u64 {
    let mut map = routed.initial_map().to_vec();
    let mut total = 0u64;
    for op in routed.ops() {
        match op {
            RoutedOp::Swap(a, b) => {
                if a != b {
                    total += arch::NoiseModel::fidelity_weight(noise.swap_fidelity(*a, *b));
                    for m in map.iter_mut() {
                        if *m == *a {
                            *m = *b;
                        } else if *m == *b {
                            *m = *a;
                        }
                    }
                }
            }
            RoutedOp::Logical(k) => {
                if let circuit::Gate::Two { a, b, .. } = &source.gates()[*k] {
                    total +=
                        arch::NoiseModel::fidelity_weight(noise.cx_fidelity(map[a.0], map[b.0]));
                }
            }
        }
    }
    total
}

fn devices() -> Vec<arch::ConnectivityGraph> {
    vec![
        arch::devices::linear(6),
        arch::devices::ring(6),
        arch::devices::grid(2, 3),
        arch::devices::tokyo_minus(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn heuristics_always_produce_verified_solutions(
        c in circuit_strategy(6, 12),
        device_idx in 0usize..4,
    ) {
        let graph = &devices()[device_idx];
        for router in [Box::new(Sabre::default()) as Box<dyn Router>, Box::new(Tket::default())] {
            let routed = router.route(&c, graph);
            let routed = routed.expect("heuristics are total on connected devices");
            prop_assert!(verify(&c, graph, &routed).is_ok(),
                "{} produced an invalid routing", router.name());
        }
    }

    #[test]
    fn sliced_satmap_verified_and_bounded_below_by_monolithic(
        c in circuit_strategy(5, 8),
    ) {
        let graph = arch::devices::grid(2, 3);
        let mono = SatMap::new(SatMapConfig::monolithic()).route(&c, &graph);
        let sliced = SatMap::new(SatMapConfig::sliced(2)).route(&c, &graph);
        if let Ok(m) = &mono {
            prop_assert!(verify(&c, &graph, m).is_ok());
            if let Ok(s) = &sliced {
                prop_assert!(verify(&c, &graph, s).is_ok());
                // Local optimality can cost extra swaps but never beats the
                // global optimum.
                prop_assert!(s.swap_count() >= m.swap_count(),
                    "sliced {} < monolithic {}", s.swap_count(), m.swap_count());
            }
        }
    }

    #[test]
    fn dispatched_route_costs_match_forced_serial_linear(
        c in circuit_strategy(4, 6),
        weighted in prop::bool::ANY,
    ) {
        // The adaptive dispatcher (Auto width, Race strategy) may pick any
        // worker plan, but both requests prove optimality under an
        // unlimited budget, so the objective value must match a forced
        // serial linear solve exactly — weighted and unweighted alike.
        let graph = arch::devices::ring(4);
        let router = PortfolioSatMap::with_backend(SatMapConfig::monolithic());
        let objective = if weighted {
            Objective::Fidelity(arch::NoiseModel::synthetic(&graph, 7))
        } else {
            Objective::SwapCount
        };
        let dispatched = router.route_request(
            &RouteRequest::new(&c, &graph)
                .with_objective(objective.clone())
                .with_parallelism(Parallelism::Auto)
                .with_strategy(SearchStrategy::Race),
        );
        let forced = router.route_request(
            &RouteRequest::new(&c, &graph)
                .with_objective(objective.clone())
                .with_parallelism(Parallelism::Serial)
                .with_strategy(SearchStrategy::Linear),
        );
        let d = dispatched.routed().expect("dispatched request solves");
        let f = forced.routed().expect("forced request solves");
        prop_assert!(verify(&c, &graph, d).is_ok());
        prop_assert!(verify(&c, &graph, f).is_ok());
        match &objective {
            Objective::Fidelity(noise) => prop_assert_eq!(
                quantized_infidelity(d, &c, noise),
                quantized_infidelity(f, &c, noise),
                "dispatch changed the weighted optimum"
            ),
            Objective::SwapCount => prop_assert_eq!(
                d.added_gates(),
                f.added_gates(),
                "dispatch changed the swap optimum"
            ),
        }
    }

    #[test]
    fn satmap_cost_lower_bounds_heuristics(c in circuit_strategy(5, 6)) {
        let graph = arch::devices::tokyo_minus();
        let opt = SatMap::new(SatMapConfig::monolithic())
            .route(&c, &graph)
            .expect("small instances solve");
        prop_assert!(verify(&c, &graph, &opt).is_ok());
        let heuristic = Tket::default().route(&c, &graph).expect("tket is total");
        prop_assert!(opt.swap_count() <= heuristic.swap_count());
    }
}

//! Property tests across the whole stack: random circuits on random
//! devices route and verify with every router, and the exact solvers'
//! costs are mutually consistent.

use proptest::prelude::*;

use circuit::{verify::verify, Circuit, Router};
use heuristics::{Sabre, Tket};
use satmap::{SatMap, SatMapConfig};

/// Strategy: a random circuit over `n` qubits with up to `max_gates`
/// two-qubit gates plus sprinkled single-qubit gates.
fn circuit_strategy(n: usize, max_gates: usize) -> impl Strategy<Value = Circuit> {
    prop::collection::vec((0..n, 0..n, prop::bool::ANY), 1..=max_gates).prop_map(move |specs| {
        let mut c = Circuit::new(n);
        for (a, b, with_h) in specs {
            if a != b {
                c.cx(a, b);
            }
            if with_h {
                c.h(a);
            }
        }
        c
    })
}

fn devices() -> Vec<arch::ConnectivityGraph> {
    vec![
        arch::devices::linear(6),
        arch::devices::ring(6),
        arch::devices::grid(2, 3),
        arch::devices::tokyo_minus(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn heuristics_always_produce_verified_solutions(
        c in circuit_strategy(6, 12),
        device_idx in 0usize..4,
    ) {
        let graph = &devices()[device_idx];
        for router in [Box::new(Sabre::default()) as Box<dyn Router>, Box::new(Tket::default())] {
            let routed = router.route(&c, graph);
            let routed = routed.expect("heuristics are total on connected devices");
            prop_assert!(verify(&c, graph, &routed).is_ok(),
                "{} produced an invalid routing", router.name());
        }
    }

    #[test]
    fn sliced_satmap_verified_and_bounded_below_by_monolithic(
        c in circuit_strategy(5, 8),
    ) {
        let graph = arch::devices::grid(2, 3);
        let mono = SatMap::new(SatMapConfig::monolithic()).route(&c, &graph);
        let sliced = SatMap::new(SatMapConfig::sliced(2)).route(&c, &graph);
        if let Ok(m) = &mono {
            prop_assert!(verify(&c, &graph, m).is_ok());
            if let Ok(s) = &sliced {
                prop_assert!(verify(&c, &graph, s).is_ok());
                // Local optimality can cost extra swaps but never beats the
                // global optimum.
                prop_assert!(s.swap_count() >= m.swap_count(),
                    "sliced {} < monolithic {}", s.swap_count(), m.swap_count());
            }
        }
    }

    #[test]
    fn satmap_cost_lower_bounds_heuristics(c in circuit_strategy(5, 6)) {
        let graph = arch::devices::tokyo_minus();
        let opt = SatMap::new(SatMapConfig::monolithic())
            .route(&c, &graph)
            .expect("small instances solve");
        prop_assert!(verify(&c, &graph, &opt).is_ok());
        let heuristic = Tket::default().route(&c, &graph).expect("tket is total");
        prop_assert!(opt.swap_count() <= heuristic.swap_count());
    }
}

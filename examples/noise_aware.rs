//! Noise-aware mapping (the paper's Q6): weighted MaxSAT maximizes output
//! fidelity under a per-edge error model instead of minimizing swap count.
//!
//! Run with: `cargo run --release --example noise_aware`

use std::time::Duration;

use circuit::{verify::verify, Router};
use satmap::{Objective, SatMap, SatMapConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = arch::devices::tokyo();
    // Synthetic calibration with FakeTokyo-like spread (see DESIGN.md).
    let noise = arch::NoiseModel::synthetic(&graph, 2022);
    let circuit = circuit::generators::random_local(5, 12, 4, 0.2, 7);
    let budget = Duration::from_secs(10);

    let swap_min = SatMap::new(SatMapConfig::default().with_budget(budget));
    let fid_max = SatMap::new(SatMapConfig {
        objective: Objective::Fidelity(noise.clone()),
        ..SatMapConfig::default().with_budget(budget)
    });

    let a = swap_min.route(&circuit, &graph)?;
    verify(&circuit, &graph, &a).expect("verifies");
    let b = fid_max.route(&circuit, &graph)?;
    verify(&circuit, &graph, &b).expect("verifies");

    let li_a = a.log_infidelity(&circuit, &graph, &noise);
    let li_b = b.log_infidelity(&circuit, &graph, &noise);
    println!(
        "swap-count objective : {} added gates, success prob {:.4}",
        a.added_gates(),
        (-li_a).exp()
    );
    println!(
        "fidelity objective   : {} added gates, success prob {:.4}",
        b.added_gates(),
        (-li_b).exp()
    );
    // The MaxSAT engine quantizes large weight sums, so allow the
    // corresponding slack when comparing objectives.
    assert!(
        li_b <= li_a + 0.1,
        "the noise-aware objective must not lose fidelity beyond quantization slack"
    );
    println!("\nThe fidelity objective places gates on reliable edges even when");
    println!("that costs extra swaps — the behaviour Q6 of the paper demonstrates.");
    Ok(())
}

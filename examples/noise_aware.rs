//! Noise-aware mapping (the paper's Q6): weighted MaxSAT maximizes output
//! fidelity under a per-edge error model instead of minimizing swap count.
//! The objective is a property of the request, so the same router serves
//! both modes.
//!
//! Run with: `cargo run --release --example noise_aware`

use std::time::Duration;

use circuit::{verify::verify, Objective, RouteRequest};
use routers::RouterRegistry;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = arch::devices::tokyo();
    // Synthetic calibration with FakeTokyo-like spread (see DESIGN.md).
    let noise = arch::NoiseModel::synthetic(&graph, 2022);
    let circuit = circuit::generators::random_local(5, 12, 4, 0.2, 7);
    let budget = Duration::from_secs(10);

    let router = RouterRegistry::standard().create("satmap")?;
    let swap_request = RouteRequest::new(&circuit, &graph).with_budget(budget);
    let fid_request = RouteRequest::new(&circuit, &graph)
        .with_budget(budget)
        .with_objective(Objective::Fidelity(noise.clone()));

    let a = router.route_request(&swap_request).into_result()?;
    verify(&circuit, &graph, &a).expect("verifies");
    let b = router.route_request(&fid_request).into_result()?;
    verify(&circuit, &graph, &b).expect("verifies");

    let li_a = a.log_infidelity(&circuit, &graph, &noise);
    let li_b = b.log_infidelity(&circuit, &graph, &noise);
    println!(
        "swap-count objective : {} added gates, success prob {:.4}",
        a.added_gates(),
        (-li_a).exp()
    );
    println!(
        "fidelity objective   : {} added gates, success prob {:.4}",
        b.added_gates(),
        (-li_b).exp()
    );
    // The MaxSAT engine quantizes large weight sums, so allow the
    // corresponding slack when comparing objectives.
    assert!(
        li_b <= li_a + 0.1,
        "the noise-aware objective must not lose fidelity beyond quantization slack"
    );
    println!("\nThe fidelity objective places gates on reliable edges even when");
    println!("that costs extra swaps — the behaviour Q6 of the paper demonstrates.");
    Ok(())
}

//! Quickstart: map a small logical circuit onto the IBM Q20 Tokyo device
//! with SATMAP and verify the result.
//!
//! Run with: `cargo run --example quickstart`

use circuit::{verify::verify, Circuit, Router};
use satmap::{SatMap, SatMapConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's running example (Fig. 3a): q0 interacts with q1, q2, q3.
    let mut logical = Circuit::named("fig3", 4);
    logical.cx(0, 1);
    logical.cx(0, 2);
    logical.cx(3, 2);
    logical.cx(0, 3);

    // The paper's Fig. 3b device: a 4-qubit path p0–p1–p2–p3.
    let device = arch::ConnectivityGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);

    // NL-SATMAP: one monolithic MaxSAT problem, provably optimal routing.
    let router = SatMap::new(SatMapConfig::monolithic());
    let routed = router.route(&logical, &device)?;
    verify(&logical, &device, &routed).expect("independent verifier accepts");

    println!(
        "initial map (logical -> physical): {:?}",
        routed.initial_map()
    );
    println!("inserted SWAPs: {}", routed.swap_count());
    println!("added CNOT gates (3 per SWAP): {}", routed.added_gates());
    for op in routed.ops() {
        match op {
            circuit::RoutedOp::Logical(k) => println!("  gate {k}: {:?}", logical.gates()[*k]),
            circuit::RoutedOp::Swap(a, b) => println!("  swap p{a}, p{b}"),
        }
    }
    assert_eq!(routed.swap_count(), 1, "Fig. 3's optimum is a single swap");

    // The same circuit on the 20-qubit Tokyo device needs no swaps at all.
    let tokyo = arch::devices::tokyo();
    let routed_tokyo = router.route(&logical, &tokyo)?;
    println!(
        "\non IBM Q20 Tokyo: {} swaps (dense connectivity)",
        routed_tokyo.swap_count()
    );
    Ok(())
}

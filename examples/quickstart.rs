//! Quickstart: map a small logical circuit onto a device with SATMAP,
//! through the request/response routing API, and verify the result.
//!
//! Run with: `cargo run --example quickstart`

use std::time::Duration;

use circuit::{verify::verify, Circuit, RouteRequest};
use routers::RouterRegistry;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's running example (Fig. 3a): q0 interacts with q1, q2, q3.
    let mut logical = Circuit::named("fig3", 4);
    logical.cx(0, 1);
    logical.cx(0, 2);
    logical.cx(3, 2);
    logical.cx(0, 3);

    // The paper's Fig. 3b device: a 4-qubit path p0–p1–p2–p3.
    let device = arch::ConnectivityGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);

    // NL-SATMAP: one monolithic MaxSAT problem, provably optimal routing.
    // The registry constructs any router by name; the request carries the
    // per-call budget.
    let registry = RouterRegistry::standard();
    let router = registry.create("nl-satmap")?;
    let request = RouteRequest::new(&logical, &device).with_budget(Duration::from_secs(30));
    let outcome = router.route_request(&request);
    let routed = outcome.routed().ok_or("routing failed")?;
    verify(&logical, &device, routed).expect("independent verifier accepts");

    println!(
        "initial map (logical -> physical): {:?}",
        routed.initial_map()
    );
    println!("inserted SWAPs: {}", routed.swap_count());
    println!("added CNOT gates (3 per SWAP): {}", routed.added_gates());
    println!(
        "solved in {:.2?} with {} SAT calls",
        outcome.wall_time(),
        outcome.telemetry().sat_calls
    );
    for op in routed.ops() {
        match op {
            circuit::RoutedOp::Logical(k) => println!("  gate {k}: {:?}", logical.gates()[*k]),
            circuit::RoutedOp::Swap(a, b) => println!("  swap p{a}, p{b}"),
        }
    }
    assert_eq!(routed.swap_count(), 1, "Fig. 3's optimum is a single swap");

    // The same circuit on the 20-qubit Tokyo device needs no swaps at all.
    let tokyo = arch::devices::tokyo();
    let request = RouteRequest::new(&logical, &tokyo).with_budget(Duration::from_secs(30));
    let routed_tokyo = router.route_request(&request).into_result()?;
    println!(
        "\non IBM Q20 Tokyo: {} swaps (dense connectivity)",
        routed_tokyo.swap_count()
    );
    Ok(())
}

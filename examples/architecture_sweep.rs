//! Architecture study: how the gap between SATMAP and a heuristic router
//! changes with device connectivity (the paper's Q4 / Fig. 14), on the
//! Tokyo− / Tokyo / Tokyo+ family.
//!
//! Run with: `cargo run --release --example architecture_sweep`

use std::time::Duration;

use circuit::{verify::verify, Parallelism, RouteRequest};
use routers::RouterRegistry;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let budget = Duration::from_secs(5);
    let circuits: Vec<circuit::Circuit> = (0..4)
        .map(|seed| circuit::generators::random_local(8, 30, 7, 0.2, seed))
        .collect();

    let registry = RouterRegistry::standard();
    let satmap = registry.create("satmap")?;
    let tket = registry.create("tket")?;

    println!(
        "{:<10} {:>10} {:>14} {:>12} {:>8}",
        "device", "avg.deg", "SATMAP gates", "TKET gates", "ratio"
    );
    for graph in [
        arch::devices::tokyo_minus(),
        arch::devices::tokyo(),
        arch::devices::tokyo_plus(),
    ] {
        let mut sm_total = 0usize;
        let mut tk_total = 0usize;
        let mut solved = 0usize;
        for c in &circuits {
            // Per-request budget and machine-sized SAT portfolio.
            let request = RouteRequest::new(c, &graph)
                .with_budget(budget)
                .with_parallelism(Parallelism::Auto);
            // Skip circuits SATMAP cannot finish within the budget (can
            // happen on loaded machines); the comparison uses the rest.
            let Ok(sm) = satmap.route_request(&request).into_result() else {
                continue;
            };
            verify(c, &graph, &sm).expect("verifies");
            let tk = tket
                .route_request(&RouteRequest::new(c, &graph).with_budget(budget))
                .into_result()?;
            verify(c, &graph, &tk).expect("verifies");
            sm_total += sm.added_gates();
            tk_total += tk.added_gates();
            solved += 1;
        }
        let ratio = if sm_total == 0 {
            f64::INFINITY
        } else {
            tk_total as f64 / sm_total as f64
        };
        println!(
            "{:<10} {:>10.1} {:>14} {:>12} {:>8.2}   ({solved}/{} circuits)",
            graph.name(),
            graph.average_degree(),
            sm_total,
            tk_total,
            ratio,
            circuits.len()
        );
    }
    println!("\nExpected shape (paper Fig. 14): the ratio grows with connectivity —");
    println!("heuristics stay close on sparse Tokyo− and diverge on dense Tokyo+.");
    Ok(())
}

//! QAOA workload: route a MaxCut QAOA circuit with the cyclic relaxation
//! (CYC-SATMAP) and compare against plain SATMAP and the TKET-like
//! heuristic — the paper's Table IV experiment in miniature.
//!
//! The repeated structure is declared on the request
//! ([`circuit::RepeatedStructure`]); the other routers see the flat gate
//! list of the very same circuit.
//!
//! Run with: `cargo run --release --example qaoa_cyclic`

use std::time::Duration;

use circuit::{qaoa, verify::verify, Circuit, RepeatedStructure, RouteRequest};
use routers::RouterRegistry;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (n, cycles, seed) = (8usize, 2usize, 8u64);
    let graph = arch::devices::tokyo();
    let budget = Duration::from_secs(10);

    // Build the repeated structure: H layer + `cycles` copies of C_{γ,β}.
    let edges = qaoa::three_regular_graph(n, seed);
    let sub = qaoa::qaoa_subcircuit(n, &edges, 0.4, 0.3);
    let mut full = Circuit::named("qaoa", n);
    for q in 0..n {
        full.h(q);
    }
    let prefix_len = full.len();
    for _ in 0..cycles {
        full.extend_from(&sub);
    }

    let registry = RouterRegistry::standard();

    // CYC-SATMAP: solve the subcircuit once with final map = initial map,
    // then stitch copies (Section VI of the paper).
    let cyc = registry.create("cyc-satmap")?;
    let request = RouteRequest::new(&full, &graph)
        .with_budget(budget)
        .with_repetition(RepeatedStructure { prefix_len, cycles });
    let outcome = cyc.route_request(&request);
    let routed = outcome.routed().ok_or("cyclic routing failed")?;
    verify(&full, &graph, routed).expect("verifies");
    println!(
        "CYC-SATMAP: cost {:>3} added gates in {:.2?} ({} 2q gates total)",
        routed.added_gates(),
        outcome.wall_time(),
        full.num_two_qubit_gates()
    );

    // Plain SATMAP on the whole unrolled circuit.
    let sm = registry.create("satmap")?;
    let sm_outcome = sm.route_request(&RouteRequest::new(&full, &graph).with_budget(budget));
    match sm_outcome.result() {
        Ok(r) => {
            verify(&full, &graph, r).expect("verifies");
            println!(
                "SATMAP:     cost {:>3} added gates in {:.2?}",
                r.added_gates(),
                sm_outcome.wall_time()
            );
        }
        Err(e) => println!("SATMAP:     {e} after {:.2?}", sm_outcome.wall_time()),
    }

    // TKET-like heuristic.
    let tket = registry.create("tket")?;
    let tk_outcome = tket.route_request(&RouteRequest::new(&full, &graph).with_budget(budget));
    let tk = tk_outcome.routed().ok_or("tket failed")?;
    verify(&full, &graph, tk).expect("verifies");
    println!(
        "TKET:       cost {:>3} added gates in {:.2?}",
        tk.added_gates(),
        tk_outcome.wall_time()
    );

    Ok(())
}

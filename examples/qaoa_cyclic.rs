//! QAOA workload: route a MaxCut QAOA circuit with the cyclic relaxation
//! (CYC-SATMAP) and compare against plain SATMAP and the TKET-like
//! heuristic — the paper's Table IV experiment in miniature.
//!
//! Run with: `cargo run --release --example qaoa_cyclic`

use std::time::{Duration, Instant};

use circuit::{qaoa, verify::verify, Circuit, Router};
use heuristics::Tket;
use satmap::{CyclicSatMap, SatMap, SatMapConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (n, cycles, seed) = (8usize, 2usize, 8u64);
    let graph = arch::devices::tokyo();
    let budget = Duration::from_secs(10);

    // Build the repeated structure: H layer + `cycles` copies of C_{γ,β}.
    let edges = qaoa::three_regular_graph(n, seed);
    let sub = qaoa::qaoa_subcircuit(n, &edges, 0.4, 0.3);
    let mut prefix = Circuit::new(n);
    for q in 0..n {
        prefix.h(q);
    }

    // CYC-SATMAP: solve the subcircuit once with final map = initial map,
    // then stitch copies (Section VI of the paper).
    let cyc = CyclicSatMap::new(SatMapConfig::default().with_budget(budget));
    let t = Instant::now();
    let (full, routed) = cyc.route_repeated(&prefix, &sub, cycles, &graph)?;
    let cyc_time = t.elapsed();
    verify(&full, &graph, &routed).expect("verifies");
    println!(
        "CYC-SATMAP: cost {:>3} added gates in {:.2?} ({} 2q gates total)",
        routed.added_gates(),
        cyc_time,
        full.num_two_qubit_gates()
    );

    // Plain SATMAP on the whole unrolled circuit.
    let sm = SatMap::new(SatMapConfig::default().with_budget(budget));
    let t = Instant::now();
    match sm.route(&full, &graph) {
        Ok(r) => {
            verify(&full, &graph, &r).expect("verifies");
            println!(
                "SATMAP:     cost {:>3} added gates in {:.2?}",
                r.added_gates(),
                t.elapsed()
            );
        }
        Err(e) => println!("SATMAP:     {e} after {:.2?}", t.elapsed()),
    }

    // TKET-like heuristic.
    let t = Instant::now();
    let tket = Tket::default().route(&full, &graph)?;
    verify(&full, &graph, &tket).expect("verifies");
    println!(
        "TKET:       cost {:>3} added gates in {:.2?}",
        tket.added_gates(),
        t.elapsed()
    );

    Ok(())
}

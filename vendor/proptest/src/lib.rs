//! Offline, API-compatible subset of the
//! [`proptest`](https://crates.io/crates/proptest) crate (1.x surface).
//!
//! The build environment has no crates.io access, so this shim implements
//! the slice of proptest this workspace's property tests use: the
//! [`proptest!`] / [`prop_assert!`] macros, [`strategy::Strategy`] with
//! `prop_map`, range and tuple strategies, `prop::collection::vec`, and
//! `prop::bool::ANY`. Each test runs [`ProptestConfig::cases`] cases with a
//! deterministic per-case seed.
//!
//! Differences from the registry crate: no shrinking (a failing case
//! reports its inputs via the normal panic message of the assertion that
//! fired) and no persisted failure regressions. Swap the path dependency
//! for the registry crate to regain both; call sites compile unchanged.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod test_runner {
    //! The per-test random source.

    use rand::SeedableRng;

    /// Random source handed to strategies, deterministic per test case.
    pub type TestRng = rand::rngs::StdRng;

    /// Creates the generator for case number `case` of a named test.
    pub fn case_rng(test_name: &str, case: u64) -> TestRng {
        // Stable FNV-1a over the test name, mixed with the case index, so
        // every test explores a different but reproducible sequence.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::seed_from_u64(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of an associated type.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    use rand::Rng as _;
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    use rand::Rng as _;
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);

    /// Strategy generating a fixed value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub mod prop {
    //! Namespaced strategy constructors (`prop::collection`, `prop::bool`).

    pub mod collection {
        //! Collection strategies.

        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Inclusive bounds on a generated collection's length.
        ///
        /// Mirrors proptest's `SizeRange`: the concrete type is what lets
        /// plain integer literals in `vec(elem, 0..40)` infer as `usize`.
        #[derive(Clone, Copy, Debug)]
        pub struct SizeRange {
            min: usize,
            max: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { min: n, max: n }
            }
        }

        impl From<std::ops::Range<usize>> for SizeRange {
            fn from(r: std::ops::Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                SizeRange {
                    min: r.start,
                    max: r.end - 1,
                }
            }
        }

        impl From<std::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: std::ops::RangeInclusive<usize>) -> Self {
                assert!(r.start() <= r.end(), "empty size range");
                SizeRange {
                    min: *r.start(),
                    max: *r.end(),
                }
            }
        }

        /// Strategy for `Vec`s with element strategy `S` and a length drawn
        /// from a [`SizeRange`].
        #[derive(Clone, Debug)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// Generates vectors whose length is drawn from `size` and whose
        /// elements are drawn from `element`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                use rand::Rng as _;
                let len = rng.gen_range(self.size.min..=self.size.max);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    pub mod bool {
        //! Boolean strategies.

        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Strategy yielding uniformly random booleans.
        #[derive(Clone, Copy, Debug)]
        pub struct Any;

        /// Uniformly random booleans.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = bool;

            fn generate(&self, rng: &mut TestRng) -> bool {
                use rand::Rng as _;
                rng.gen_bool(0.5)
            }
        }
    }
}

/// Declares property tests.
///
/// Supports the common form used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn my_property(x in 0usize..10, flag in prop::bool::ANY) {
///         prop_assert!(x < 10 || flag);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!{ $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!{ $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:pat_param in $strat:expr ),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..u64::from(config.cases) {
                let mut rng = $crate::test_runner::case_rng(stringify!($name), case);
                $( let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng); )*
                $body
            }
        }
    )*};
}

/// Asserts a condition inside a property (no shrinking in this shim; the
/// panic carries the formatted message).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

pub mod prelude {
    //! One-stop imports mirroring `proptest::prelude`.

    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples(x in 1usize..=5, (a, b) in (0i64..4, prop::bool::ANY)) {
            prop_assert!((1..=5).contains(&x));
            prop_assert!((0..4).contains(&a));
            let _ = b;
        }

        #[test]
        fn vec_lengths_respected(v in prop::collection::vec(0u32..10, 2..=6)) {
            prop_assert!((2..=6).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| e < 10));
        }

        #[test]
        fn prop_map_applies(s in (0usize..3).prop_map(|n| "ab".repeat(n))) {
            prop_assert_eq!(s.len() % 2, 0);
        }
    }
}

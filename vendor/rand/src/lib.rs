//! Offline, API-compatible subset of the [`rand`](https://crates.io/crates/rand)
//! crate (0.8 surface).
//!
//! The build environment of this repository has no access to a crates.io
//! registry, so the workspace vendors the exact slice of `rand`'s API it
//! uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] / [`Rng::gen_bool`], and
//! [`seq::SliceRandom::shuffle`]. The generator is xoshiro256++ seeded via
//! SplitMix64 — deterministic for a given seed, statistically solid for
//! test-data generation, and explicitly **not** cryptographic.
//!
//! Swap this path dependency for the registry crate when building with
//! network access; all call sites compile unchanged.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Construction of reproducible generators from integer seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore + Sized {
    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: distributions::SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore + Sized> Rng for T {}

/// Maps a word to a float uniform in `[0, 1)` (53-bit mantissa).
#[inline]
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

pub mod rngs {
    //! Concrete generator implementations.

    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256++ with SplitMix64 seeding.
    ///
    /// Unlike the registry crate's ChaCha-based `StdRng` this is not
    /// cryptographically secure; every use in this workspace is test-data
    /// or benchmark-workload generation.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod distributions {
    //! Range-sampling support for [`super::Rng::gen_range`].

    use super::{unit_f64, RngCore};
    use std::ops::{Range, RangeInclusive};

    /// A range that knows how to sample a uniform value from itself.
    pub trait SampleRange<T> {
        /// Draws one uniform sample.
        fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
    }

    /// Unbiased integer in `[0, bound)` via rejection sampling.
    fn below<R: RngCore>(rng: &mut R, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Zone is the largest multiple of `bound` that fits in u64.
        let zone = u64::MAX - (u64::MAX % bound + 1) % bound;
        loop {
            let v = rng.next_u64();
            if v <= zone {
                return v % bound;
            }
        }
    }

    macro_rules! int_range {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for Range<$t> {
                fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + below(rng, span) as i128) as $t
                }
            }
            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = (hi as i128 - lo as i128) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (lo as i128 + below(rng, span + 1) as i128) as $t
                }
            }
        )*};
    }

    int_range!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

    impl SampleRange<f64> for Range<f64> {
        fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
            assert!(self.start < self.end, "cannot sample empty range");
            self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
        }
    }

    impl SampleRange<f32> for Range<f32> {
        fn sample_from<R: RngCore>(self, rng: &mut R) -> f32 {
            assert!(self.start < self.end, "cannot sample empty range");
            self.start + unit_f64(rng.next_u64()) as f32 * (self.end - self.start)
        }
    }
}

pub mod seq {
    //! Sequence-related sampling (shuffling, choosing).

    use super::{distributions::SampleRange, RngCore};

    /// Extension methods on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (0..=i).sample_from(rng);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(0..self.len()).sample_from(rng)])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0..1000u64)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0..1000u64)).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.gen_range(0..1000u64)).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5..=5i64);
            assert!((-5..=5).contains(&y));
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn all_inclusive_values_reachable() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0..=3usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..1000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((350..=650).contains(&hits), "suspicious bias: {hits}/1000");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}

//! Offline, API-compatible subset of the
//! [`criterion`](https://crates.io/crates/criterion) crate (0.5 surface).
//!
//! The build environment has no crates.io access, so this shim implements
//! the benchmarking surface this workspace uses: [`Criterion`],
//! benchmark groups with `sample_size` / `bench_function` /
//! `bench_with_input`, [`BenchmarkId`], [`Bencher::iter`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement model: each benchmark runs one warm-up batch and
//! `sample_size` timed samples, then prints the median, minimum, and
//! maximum time per iteration. There is no statistical outlier analysis,
//! no HTML report, and no saved baselines — swap the path dependency for
//! the registry crate to regain those; call sites compile unchanged.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One completed benchmark's summary measurement.
///
/// An extension over the real criterion's surface: the shim records every
/// benchmark it runs so harnesses can emit machine-readable reports (see
/// [`take_results`]).
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Full benchmark id (`group/function/parameter`).
    pub id: String,
    /// Median time per iteration, in nanoseconds.
    pub median_ns: u128,
}

static RESULTS: Mutex<Vec<BenchResult>> = Mutex::new(Vec::new());

/// Drains the results recorded by every benchmark run so far, in
/// execution order.
pub fn take_results() -> Vec<BenchResult> {
    std::mem::take(&mut *RESULTS.lock().expect("bench results lock"))
}

/// Prevents the compiler from optimizing away a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of one benchmark within a group: a function name plus a
/// parameter rendering (`"satmap/fig3"`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter.
    pub fn new<S: Display, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Creates an id from a parameter only.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Conversion into a [`BenchmarkId`], accepted wherever benchmarks are
/// registered (mirrors criterion's `IntoBenchmarkId`).
pub trait IntoBenchmarkId {
    /// Performs the conversion.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            id: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `iters` invocations of `routine` and records one sample.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        let elapsed = start.elapsed();
        self.samples
            .push(elapsed / u32::try_from(self.iters).unwrap_or(u32::MAX));
    }
}

/// The benchmark harness entry point.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoBenchmarkId, f: F) {
        let sample_size = self.default_sample_size;
        run_benchmark(&id.into_benchmark_id().id, sample_size, f);
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_benchmark_id().id);
        run_benchmark(&full, self.sample_size, f);
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (prints nothing extra in this shim).
    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher {
        iters: 1,
        samples: Vec::with_capacity(sample_size + 1),
    };
    // Warm-up sample, discarded.
    f(&mut bencher);
    bencher.samples.clear();
    for _ in 0..sample_size {
        f(&mut bencher);
    }
    let mut samples = bencher.samples;
    if samples.is_empty() {
        // The closure never called `iter`; nothing to report.
        println!("{id:<50} (no measurement)");
        return;
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    let (lo, hi) = (samples[0], samples[samples.len() - 1]);
    RESULTS
        .lock()
        .expect("bench results lock")
        .push(BenchResult {
            id: id.to_string(),
            median_ns: median.as_nanos(),
        });
    println!(
        "{id:<50} time: [{} {} {}]",
        format_duration(lo),
        format_duration(median),
        format_duration(hi)
    );
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Bundles benchmark functions into a callable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut calls = 0u32;
        group.bench_with_input(BenchmarkId::new("add", 1), &21u64, |b, &x| {
            b.iter(|| {
                calls += 1;
                x * 2
            })
        });
        group.finish();
        // Warm-up + 3 samples, one iteration each.
        assert_eq!(calls, 4);
    }

    #[test]
    fn id_formatting() {
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
        assert_eq!(BenchmarkId::from_parameter("p").id, "p");
    }

    #[test]
    fn results_are_recorded_and_drained() {
        let mut c = Criterion::default();
        c.bench_function("record/me", |b| b.iter(|| 1 + 1));
        let results = take_results();
        assert!(results.iter().any(|r| r.id == "record/me"));
        assert!(
            take_results().iter().all(|r| r.id != "record/me"),
            "take_results drains"
        );
    }
}

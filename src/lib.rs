//! Umbrella crate for the SATMAP (MICRO 2022) reproduction.
//!
//! Re-exports the workspace crates so the examples in `examples/` and the
//! integration tests in `tests/` can exercise the full stack:
//!
//! * [`sat`] — CDCL SAT solver substrate;
//! * [`maxsat`] — anytime weighted partial MaxSAT (Open-WBO-Inc analogue);
//! * [`arch`] — device connectivity graphs and noise models;
//! * [`circuit`] — circuit IR, QASM, benchmark suite, verifier;
//! * [`satmap`] — the paper's contribution (encoding + relaxations);
//! * [`heuristics`] — SABRE / TKET-like / A* baselines;
//! * [`olsq`] — EX-MQT / TB-OLSQ constraint-based baselines;
//! * [`routers`] — name-indexed registry constructing any router;
//! * [`experiments`] — table/figure regeneration harness.

pub use arch;
pub use circuit;
pub use experiments;
pub use heuristics;
pub use maxsat;
pub use olsq;
pub use routers;
pub use sat;
pub use satmap;
